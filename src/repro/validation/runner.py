"""Validator builders and the run harness.

:func:`run_validator` resolves a :class:`~repro.validation.spec.
ValidatorSpec` tree against a :class:`ValidationRun` — the shared state a
validation probes through: a network, per-vantage
:class:`~repro.validation.bank.IpidSampleBank` instances (one bank per
vantage, shared across every validator of the run, which is what makes
composed validations cheap), and optionally a session for candidate
derivation.

Candidate alias sets flow *down* the spec tree: combinators (sample,
filter-family) transform them and delegate to their input; technique
leaves derive them from the session's resolved report when no enclosing
combinator supplied any.  The start time flows the same way, so the
longitudinal path can re-run one spec per snapshot at per-snapshot times.
"""

from __future__ import annotations

import dataclasses
import random
from typing import TYPE_CHECKING

from repro import obs
from repro.baselines.iffinder import IffinderProber
from repro.baselines.ptr import PtrResolver
from repro.core.engine import AliasReport
from repro.errors import ValidationError
from repro.net.addresses import AddressFamily, family_of, is_ipv6
from repro.simnet.device import ServiceType
from repro.simnet.network import SimulatedInternet, VantagePoint
from repro.validation.bank import IpidSampleBank
from repro.validation.report import (
    CandidateSets,
    SetVerdict,
    ValidationReport,
    canonical_partition,
)
from repro.validation.spec import (
    VALIDATOR_KINDS,
    ValidatorSpec,
    ally,
    consensus,
    display_name,
    iffinder,
    midar,
    ptr,
    register_validator,
    sample,
    speedtrap,
    validator_kind,
)
from repro.validation.techniques import AllyPipeline, MidarConfig, MidarPipeline

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, types only
    from repro.api.session import ReproSession
    from repro.validation.budget import ProbeBudgetOptimizer

#: The vantage point bank-based validators probe from unless a spec
#: overrides it.  One shared vantage is what lets validators share one
#: bank; it matches the vantage the paper's Table 2 MIDAR run used.
DEFAULT_VALIDATION_VANTAGE = VantagePoint(name="midar-vp", address="192.0.2.251")


class ValidationRun:
    """Shared probing state for one or more validator executions.

    A session owns one run (``session.validation_run``) so successive
    ``session.validate(...)`` calls share banks; the longitudinal path
    builds one per campaign.  ``session`` may be ``None`` — then every
    spec must be given explicit candidates and start times.
    """

    def __init__(self, network: SimulatedInternet, session: "ReproSession | None" = None) -> None:
        self.network = network
        self.session = session
        self._banks: dict[tuple[str, str, bool], IpidSampleBank] = {}
        #: When set (see :func:`repro.validation.budget.run_budgeted`), the
        #: bank-based builders route through the budgeted pipelines.
        self.optimizer: "ProbeBudgetOptimizer | None" = None
        self._start_cache: dict[tuple[str, float], float] = {}

    def bank(self, vantage: VantagePoint) -> IpidSampleBank:
        """The shared sample bank of one vantage point (built once)."""
        key = (vantage.name, vantage.address, vantage.distributed)
        bank = self._banks.get(key)
        if bank is None:
            bank = self._banks[key] = IpidSampleBank(self.network, vantage)
        return bank

    def banks(self) -> dict[tuple[str, str, bool], IpidSampleBank]:
        """Every bank built so far, keyed by vantage identity (read-only).

        The probe-accounting surface: summing ``probes_issued`` /
        ``probes_reused`` over the values gives the run's total spend, the
        same totals the obs layer's ``validation.probes`` counters carry.
        """
        return self._banks

    def restore_bank(self, state: dict) -> IpidSampleBank:
        """Install a persisted bank state (replacing any bank of its vantage).

        The restored bank carries every banked series, pair and canonical
        estimation entry of the saved run, so a reloaded session re-scores
        matching validation specs fully offline — zero network probes.
        """
        bank = IpidSampleBank.from_state(self.network, state)
        key = (bank.vantage.name, bank.vantage.address, bank.vantage.distributed)
        self._banks[key] = bank
        return bank

    def derived_start(self, after: str, lag: float) -> float:
        """Dataset-relative start times, memoised per (dataset, lag).

        Validators that compute equal ``start_after``/``start_lag``
        schedules must land on float-identical start times so their
        estimation and corroboration collections hit one bank key instead
        of near-miss duplicates — a measured contributor to the old ~7%
        reuse rate.
        """
        key = (after, lag)
        start = self._start_cache.get(key)
        if start is None:
            if self.session is None:
                raise ValidationError(
                    f"deriving a start time from dataset {after!r} needs a session"
                )
            timestamps = [
                observation.timestamp for observation in self.session.dataset(after)
            ]
            start = self._start_cache[key] = max(timestamps) + lag if timestamps else 0.0
        return start


def run_validator(
    run: ValidationRun,
    spec: ValidatorSpec,
    candidates: CandidateSets | None = None,
    start_time: float | None = None,
) -> ValidationReport:
    """Execute one validator spec tree and return its report."""
    builder = VALIDATOR_KINDS.get(spec.kind)
    with obs.span("validator.run", kind=spec.kind):
        return builder(run, spec, candidates, start_time)


# --------------------------------------------------------------------------- #
# Candidate and schedule derivation
# --------------------------------------------------------------------------- #
def candidate_sets(report: AliasReport, spec: ValidatorSpec) -> CandidateSets:
    """The index-derived candidate sets a (leaf) spec asks for.

    Reads ``protocol`` (ssh/bgp/snmpv3/union, default ssh) and ``family``
    (ipv4/ipv6, default ipv4) from the spec and returns the non-singleton
    sets of the matching collection, in collection order.
    """
    family = str(spec.param("family", "ipv4"))
    protocol = str(spec.param("protocol", "ssh"))
    if family == "ipv4":
        collections, union = report.ipv4, report.ipv4_union
    elif family == "ipv6":
        collections, union = report.ipv6, report.ipv6_union
    else:
        raise ValidationError(f"unknown address family {family!r} (use ipv4 or ipv6)")
    if protocol == "union":
        collection = union
    else:
        try:
            collection = collections[ServiceType(protocol)]
        except ValueError:
            raise ValidationError(
                f"unknown protocol {protocol!r} (use ssh, bgp, snmpv3 or union)"
            ) from None
    return tuple(alias_set.addresses for alias_set in collection.non_singleton())


def _derive_candidates(run: ValidationRun, spec: ValidatorSpec) -> CandidateSets:
    """Candidates of a leaf spec, resolved through the run's session."""
    leaf = spec.leaf()
    if run.session is None:
        raise ValidationError(
            f"validator {spec.describe()} needs a session to derive candidate "
            "sets; pass candidates explicitly"
        )
    source = str(leaf.param("source", "active"))
    return candidate_sets(run.session.report(source), leaf)


def _derive_start(run: ValidationRun, spec: ValidatorSpec) -> float:
    """When probing starts: explicit param, dataset-relative, or zero.

    ``start_time`` wins; otherwise ``start_after`` names a dataset and the
    run starts ``start_lag`` (default one hour) after its last observation
    — how Table 2 schedules the MIDAR run right after the active campaign.
    """
    explicit = spec.param("start_time")
    if explicit is not None:
        return float(explicit)
    after = spec.param("start_after")
    if after is None:
        return 0.0
    if run.session is None:
        raise ValidationError(
            f"validator {spec.describe()} derives its start time from dataset "
            f"{after!r}, which needs a session; pass start_time explicitly"
        )
    return run.derived_start(str(after), float(spec.param("start_lag", 3600.0)))


def _vantage_from(spec: ValidatorSpec) -> VantagePoint:
    """The vantage a spec probes from (the shared default unless overridden)."""
    default = DEFAULT_VALIDATION_VANTAGE
    return VantagePoint(
        name=str(spec.param("vantage_name", default.name)),
        address=str(spec.param("vantage_address", default.address)),
        distributed=bool(spec.param("distributed", default.distributed)),
    )


# --------------------------------------------------------------------------- #
# IPID technique kinds (MIDAR / Speedtrap / Ally)
# --------------------------------------------------------------------------- #
def _midar_config_from(spec: ValidatorSpec, default: MidarConfig) -> MidarConfig:
    return MidarConfig(
        estimation_samples=int(spec.param("estimation_samples", default.estimation_samples)),
        estimation_interval=float(spec.param("estimation_interval", default.estimation_interval)),
        corroboration_rounds=int(spec.param("corroboration_rounds", default.corroboration_rounds)),
        corroboration_interval=float(
            spec.param("corroboration_interval", default.corroboration_interval)
        ),
        corroboration_passes=int(spec.param("corroboration_passes", default.corroboration_passes)),
        min_responses=int(spec.param("min_responses", default.min_responses)),
        max_velocity=float(spec.param("max_velocity", default.max_velocity)),
        velocity_ratio_bound=float(
            spec.param("velocity_ratio_bound", default.velocity_ratio_bound)
        ),
        max_set_size=int(spec.param("max_set_size", default.max_set_size)),
    )


def _run_midar_like(
    run: ValidationRun,
    spec: ValidatorSpec,
    candidates: CandidateSets | None,
    start_time: float | None,
    default_config: MidarConfig,
    ipv6_only: bool,
) -> ValidationReport:
    if candidates is None:
        candidates = _derive_candidates(run, spec)
    start = start_time if start_time is not None else _derive_start(run, spec)
    bank = run.bank(_vantage_from(spec))
    config = _midar_config_from(spec, default_config)
    if run.optimizer is not None:
        from repro.validation.budget import run_midar_like_budgeted

        return run_midar_like_budgeted(
            spec, candidates, start, bank, config, ipv6_only, run.optimizer
        )
    pipeline = MidarPipeline(bank, config)
    issued_before, reused_before = bank.probes_issued, bank.probes_reused
    verdicts: list[SetVerdict] = []
    now = start
    for candidate in candidates:
        members = [address for address in candidate if is_ipv6(address)] if ipv6_only else candidate
        verdict = pipeline.verify_set(members, start_time=now)
        now = verdict.finished_at
        verdicts.append(
            SetVerdict(
                candidate=verdict.candidate,
                testable=verdict.testable,
                agrees=verdict.agrees,
                partition=canonical_partition(verdict.partition),
                classes=tuple(
                    sorted(
                        (address, target.value)
                        for address, target in verdict.target_classes.items()
                    )
                ),
                started_at=verdict.started_at,
                finished_at=verdict.finished_at,
            )
        )
    return ValidationReport(
        validator=display_name(spec),
        spec=spec,
        candidates=len(candidates),
        verdicts=tuple(verdicts),
        probes_issued=bank.probes_issued - issued_before,
        probes_reused=bank.probes_reused - reused_before,
        started_at=start,
        finished_at=now,
    )


@validator_kind("midar", "MIDAR estimation → elimination → corroboration per candidate set")
def _build_midar(run, spec, candidates, start_time):
    return _run_midar_like(
        run, spec, candidates, start_time, default_config=MidarConfig(), ipv6_only=False
    )


@validator_kind("speedtrap", "Speedtrap-style IPv6 fragment-ID verification (IPv6 members only)")
def _build_speedtrap(run, spec, candidates, start_time):
    return _run_midar_like(
        run,
        spec,
        candidates,
        start_time,
        default_config=MidarConfig(estimation_samples=6, corroboration_rounds=5),
        ipv6_only=True,
    )


@validator_kind("ally", "pairwise Ally tests per candidate set (reuses banked IPID series)")
def _build_ally(run, spec, candidates, start_time):
    if candidates is None:
        candidates = _derive_candidates(run, spec)
    start = start_time if start_time is not None else _derive_start(run, spec)
    bank = run.bank(_vantage_from(spec))
    max_set_size = int(spec.param("max_set_size", 10))
    if run.optimizer is not None:
        from repro.validation.budget import run_ally_budgeted

        return run_ally_budgeted(
            spec,
            candidates,
            start,
            bank,
            rounds=int(spec.param("rounds", 3)),
            interval=float(spec.param("interval", 0.5)),
            max_velocity=float(spec.param("max_velocity", 2_000.0)),
            max_set_size=max_set_size,
            optimizer=run.optimizer,
        )
    pipeline = AllyPipeline(
        bank,
        rounds=int(spec.param("rounds", 3)),
        interval=float(spec.param("interval", 0.5)),
        max_velocity=float(spec.param("max_velocity", 2_000.0)),
        reuse=bool(spec.param("reuse", True)),
    )
    issued_before, reused_before = bank.probes_issued, bank.probes_reused
    verdicts: list[SetVerdict] = []
    now = start
    for candidate in candidates:
        result = pipeline.verify_set(candidate, start_time=now, max_set_size=max_set_size)
        now = result.finished_at
        verdicts.append(
            SetVerdict(
                candidate=frozenset(result.members),
                testable=result.testable,
                agrees=result.agrees,
                partition=canonical_partition(result.partition),
                started_at=result.started_at,
                finished_at=result.finished_at,
            )
        )
    return ValidationReport(
        validator=display_name(spec),
        spec=spec,
        candidates=len(candidates),
        verdicts=tuple(verdicts),
        probes_issued=bank.probes_issued - issued_before,
        probes_reused=bank.probes_reused - reused_before,
        started_at=start,
        finished_at=now,
    )


# --------------------------------------------------------------------------- #
# Non-IPID technique kinds (iffinder / PTR)
# --------------------------------------------------------------------------- #
@validator_kind("iffinder", "common-source-address probing per candidate set")
def _build_iffinder(run, spec, candidates, start_time):
    from repro.core.alias_resolution import UnionFind

    if candidates is None:
        candidates = _derive_candidates(run, spec)
    start = start_time if start_time is not None else _derive_start(run, spec)
    rate = float(spec.param("probes_per_second", 1_000.0))
    prober = IffinderProber(run.network, _vantage_from(spec), probes_per_second=rate)
    optimizer = run.optimizer
    verdicts: list[SetVerdict] = []
    now = start
    probes = 0
    for candidate in candidates:
        members = sorted(candidate)
        member_set = frozenset(members)
        if optimizer is not None and not optimizer.request(len(members)):
            from repro.validation.budget import unresolved_verdict

            verdicts.append(unresolved_verdict(members, now))
            optimizer.record(display_name(spec), member_set, "unresolved", 0, 0)
            continue
        union_find = UnionFind()
        set_start = now
        revealed = 0
        for address in members:
            observation = prober.probe(address, now=now)
            now += 1.0 / rate
            probes += 1
            union_find.add(address)
            if observation.reveals_alias and observation.icmp_source in member_set:
                union_find.union(address, observation.icmp_source)
                revealed += 1
        partition = canonical_partition(union_find.groups())
        testable = revealed > 0
        if optimizer is not None:
            optimizer.charge(len(members))
            optimizer.record(display_name(spec), member_set, "probed", len(members), 0)
        verdicts.append(
            SetVerdict(
                candidate=member_set,
                testable=testable,
                agrees=testable and len(partition) == 1,
                partition=partition,
                started_at=set_start,
                finished_at=now,
            )
        )
    return ValidationReport(
        validator=display_name(spec),
        spec=spec,
        candidates=len(candidates),
        verdicts=tuple(verdicts),
        probes_issued=probes,
        probes_reused=0,
        started_at=start,
        finished_at=now,
    )


@validator_kind("ptr", "reverse-DNS name matching per candidate set")
def _build_ptr(run, spec, candidates, start_time):
    if candidates is None:
        candidates = _derive_candidates(run, spec)
    start = start_time if start_time is not None else _derive_start(run, spec)
    default_seed = run.session.config.seed if run.session is not None else 0
    resolver = PtrResolver(
        run.network,
        coverage=float(spec.param("coverage", 0.6)),
        seed=int(spec.param("seed", default_seed)),
    )
    verdicts: list[SetVerdict] = []
    queries = 0
    for candidate in candidates:
        members = sorted(candidate)
        names: dict[str, list[str]] = {}
        for address in members:
            queries += 1
            name = resolver.resolve(address)
            if name is not None:
                names.setdefault(name, []).append(address)
        resolved = sum(len(addresses) for addresses in names.values())
        partition = canonical_partition(names.values())
        testable = resolved >= 2
        verdicts.append(
            SetVerdict(
                candidate=frozenset(members),
                testable=testable,
                agrees=testable and len(partition) == 1,
                partition=partition,
                started_at=start,
                finished_at=start,
            )
        )
    return ValidationReport(
        validator=display_name(spec),
        spec=spec,
        candidates=len(candidates),
        verdicts=tuple(verdicts),
        probes_issued=queries,
        probes_reused=0,
        started_at=start,
        finished_at=start,
    )


# --------------------------------------------------------------------------- #
# Combinator kinds
# --------------------------------------------------------------------------- #
@validator_kind(
    "consensus", "run N techniques over one candidate list; per-set majority vote"
)
def _build_consensus(run, spec, candidates, start_time):
    from repro.validation.budget import consensus_report

    if len(spec.inputs) < 2:
        raise ValidationError(
            f"validator combinator 'consensus' takes at least two inputs "
            f"(got {len(spec.inputs)})"
        )
    if candidates is None:
        candidates = _derive_candidates(run, spec)
    start = start_time
    if start is None and (
        spec.param("start_time") is not None or spec.param("start_after") is not None
    ):
        start = _derive_start(run, spec)
    reports = [
        run_validator(run, inner, candidates=candidates, start_time=start)
        for inner in spec.inputs
    ]
    overall_start = (
        start if start is not None else min(report.started_at for report in reports)
    )
    return consensus_report(spec, reports, candidates, overall_start)


def _single_input(spec: ValidatorSpec) -> ValidatorSpec:
    if len(spec.inputs) != 1:
        raise ValidationError(
            f"validator combinator {spec.kind!r} takes exactly one input "
            f"(got {len(spec.inputs)})"
        )
    return spec.inputs[0]


@validator_kind("sample", "validate a seeded random sample of the candidate sets")
def _build_sample(run, spec, candidates, start_time):
    inner = _single_input(spec)
    base = candidates if candidates is not None else _derive_candidates(run, spec)
    max_size = spec.param("max_size")
    filtered = [
        candidate
        for candidate in base
        if max_size is None or len(candidate) <= int(max_size)
    ]
    size = int(spec.param("size", 150))
    rng = random.Random(int(spec.param("seed", 7)))
    chosen = rng.sample(filtered, min(size, len(filtered)))
    report = run_validator(run, inner, candidates=tuple(chosen), start_time=start_time)
    return dataclasses.replace(report, spec=spec, validator=display_name(spec))


@validator_kind("filter-family", "restrict candidate members to one address family")
def _build_filter_family(run, spec, candidates, start_time):
    inner = _single_input(spec)
    family = str(spec.param("family", "ipv6"))
    if family not in ("ipv4", "ipv6"):
        raise ValidationError(f"unknown address family {family!r} (use ipv4 or ipv6)")
    target = AddressFamily.IPV6 if family == "ipv6" else AddressFamily.IPV4
    base = candidates if candidates is not None else _derive_candidates(run, spec)
    projected = tuple(
        frozenset(address for address in candidate if family_of(address) is target)
        for candidate in base
    )
    report = run_validator(run, inner, candidates=projected, start_time=start_time)
    return dataclasses.replace(report, spec=spec, validator=display_name(spec))


# --------------------------------------------------------------------------- #
# Named validators: the paper's validation compositions
# --------------------------------------------------------------------------- #
def table2_midar_spec(size: int = 150, seed: int = 7) -> ValidatorSpec:
    """The Table 2 MIDAR composition: sampled SSH IPv4 sets, probed after
    the active campaign."""
    return sample(
        midar(source="active", protocol="ssh", family="ipv4", start_after="active-ipv6"),
        size=size,
        seed=seed,
        max_size=10,
    )


#: MIDAR over sampled SSH sets — exactly what the Table 2 experiment runs.
MIDAR_SSH_SAMPLE = table2_midar_spec()
#: Ally over the same sample; with the bank warm from a MIDAR run it
#: decides most pairs from banked series instead of probing.
ALLY_SSH_SAMPLE = sample(
    ally(source="active", protocol="ssh", family="ipv4", start_after="active-ipv6"),
    size=150,
    seed=7,
    max_size=10,
)
#: Speedtrap over sampled IPv6 union sets (the leaf drops IPv4 members).
SPEEDTRAP_UNION_SAMPLE = sample(
    speedtrap(source="active", protocol="union", family="ipv6", start_after="active-ipv6"),
    size=150,
    seed=7,
    max_size=10,
)
#: iffinder over the same SSH sample (no IPID dependence at all).
IFFINDER_SSH_SAMPLE = sample(
    iffinder(source="active", protocol="ssh", family="ipv4"),
    size=150,
    seed=7,
    max_size=10,
)
#: PTR name matching over the same SSH sample.
PTR_SSH_SAMPLE = sample(
    ptr(source="active", protocol="ssh", family="ipv4"),
    size=150,
    seed=7,
    max_size=10,
)
#: MIDAR, Ally and iffinder voting over the same SSH sample through one
#: shared bank — the "techniques disagree" discussion as a report.
CONSENSUS_SSH_SAMPLE = sample(
    consensus(
        midar(source="active", protocol="ssh", family="ipv4", start_after="active-ipv6"),
        ally(source="active", protocol="ssh", family="ipv4", start_after="active-ipv6"),
        iffinder(source="active", protocol="ssh", family="ipv4"),
    ),
    size=150,
    seed=7,
    max_size=10,
)

register_validator(
    "midar", MIDAR_SSH_SAMPLE, "MIDAR over sampled SSH IPv4 sets (the Table 2 validation)"
)
register_validator(
    "ally", ALLY_SSH_SAMPLE, "Ally over the same SSH sample, reusing the shared IPID bank"
)
register_validator(
    "speedtrap", SPEEDTRAP_UNION_SAMPLE, "Speedtrap over sampled IPv6 union sets"
)
register_validator(
    "iffinder", IFFINDER_SSH_SAMPLE, "common source address probing over the SSH sample"
)
register_validator(
    "ptr", PTR_SSH_SAMPLE, "reverse-DNS name matching over the SSH sample"
)
register_validator(
    "consensus",
    CONSENSUS_SSH_SAMPLE,
    "MIDAR + Ally + iffinder majority vote over the SSH sample",
)
