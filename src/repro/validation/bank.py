"""The shared IPID sample bank.

MIDAR, Ally and Speedtrap all reduce to the same primitive: collect an IPID
time series from a target on some probing schedule and reason about the
merged sequences.  Before this module each technique probed the simulated
Internet on its own, so validating one candidate set with two techniques
paid for two full probing campaigns against the same targets.

:class:`IpidSampleBank` collects each series **once per (addresses,
schedule)** and shares it across validators: a composed validation (e.g.
MIDAR followed by Ally over the same sampled sets, see
:mod:`repro.validation.runner`) answers the second technique's sample
requests from the bank instead of the network, cutting the probe count —
``benchmarks/bench_validation.py`` asserts the reduction with verdict
parity.

The bank is a pure memoisation layer: a cold bank issues exactly the calls
:func:`~repro.baselines.ipid.collect_series` /
:func:`~repro.baselines.ipid.collect_interleaved` would, in the same order,
so single-technique runs (and the ``MidarProber``/``AllyProber`` shims
built on private banks) behave byte-for-byte like the pre-bank probers.
"""

from __future__ import annotations

from typing import Sequence

from repro import obs
from repro.baselines.ipid import (
    IpidTimeSeries,
    collect_interleaved,
    collect_series,
    shared_counter_test,
)
from repro.simnet.network import SimulatedInternet, VantagePoint

#: Memoisation key of one collected series or interleaved collection.
ScheduleKey = tuple


class IpidSampleBank:
    """Collect IPID time series once per (addresses, schedule) and share them.

    One bank wraps one (network, vantage) pair — samples taken from
    different vantage points see different loss and rate-limit state, so
    they must not be conflated.  Cached series are treated as immutable.
    """

    def __init__(self, network: SimulatedInternet, vantage: VantagePoint) -> None:
        self._network = network
        self._vantage = vantage
        self._series: dict[ScheduleKey, IpidTimeSeries] = {}
        self._interleaved: dict[ScheduleKey, dict[str, IpidTimeSeries]] = {}
        #: unordered pair -> key of the latest interleaved collection that
        #: probed both addresses together (schedule-agnostic pair reuse).
        self._pairs: dict[frozenset[str], ScheduleKey] = {}
        #: (address, samples, interval) -> key of the canonical estimation
        #: series for that schedule shape, whatever its start time.  One
        #: canonical collection per vantage serves every validator whose
        #: estimation window aligns (same sample count and spacing),
        #: replacing the per-validator series collection the exact-key path
        #: would require.
        self._estimation: dict[tuple[str, int, float], ScheduleKey] = {}
        self._probes_issued = 0
        self._probes_reused = 0

    def _count(self, outcome: str, probes: int) -> None:
        """Track one collection's probe spend (private tally + registry).

        Called per *collection* (a batch of probes), never per probe, so
        the counter cost stays off the simulated-network hot path.
        """
        if outcome == "issued":
            self._probes_issued += probes
        else:
            self._probes_reused += probes
        if obs.is_enabled():
            obs.add(
                "validation.probes", probes, outcome=outcome, vantage=self._vantage.name
            )

    @property
    def network(self) -> SimulatedInternet:
        """The network the bank probes."""
        return self._network

    @property
    def vantage(self) -> VantagePoint:
        """The vantage point every collection probes from."""
        return self._vantage

    @property
    def probes_issued(self) -> int:
        """Probes actually sent to the network (responses and timeouts)."""
        return self._probes_issued

    @property
    def probes_reused(self) -> int:
        """Probes answered from the bank instead of the network."""
        return self._probes_reused

    def series(
        self, address: str, samples: int, interval: float, start_time: float
    ) -> IpidTimeSeries:
        """One address probed ``samples`` times (MIDAR's estimation stage)."""
        key = ("series", address, samples, interval, start_time)
        cached = self._series.get(key)
        if cached is not None:
            self._count("reused", samples)
            return cached
        collected = collect_series(
            self._network,
            address,
            self._vantage,
            samples=samples,
            interval=interval,
            start_time=start_time,
        )
        self._count("issued", samples)
        self._series[key] = collected
        return collected

    def interleaved(
        self,
        addresses: Sequence[str],
        rounds: int,
        interval: float,
        start_time: float,
    ) -> dict[str, IpidTimeSeries]:
        """A round-robin interleaved collection over ``addresses``."""
        members = tuple(addresses)
        key = ("interleaved", members, rounds, interval, start_time)
        cached = self._interleaved.get(key)
        if cached is not None:
            self._count("reused", rounds * len(members))
            return cached
        collected = collect_interleaved(
            self._network,
            list(members),
            self._vantage,
            rounds=rounds,
            interval=interval,
            start_time=start_time,
        )
        self._count("issued", rounds * len(members))
        self._interleaved[key] = collected
        for position, left in enumerate(members):
            for right in members[position + 1 :]:
                self._pairs[frozenset((left, right))] = key
        return collected

    def cached_interleaved(
        self,
        left: str,
        right: str,
        requested_probes: int | None = None,
        now: float | None = None,
        max_age: float | None = None,
    ) -> dict[str, IpidTimeSeries] | None:
        """Any banked interleaved collection that probed both addresses.

        Schedule-agnostic: this is how a second technique (Ally) reuses the
        series a first one (MIDAR corroboration) already paid for.  Returns
        the most recently collected match, or ``None``.

        ``requested_probes`` is what the caller's own schedule would have
        issued for this pair — the quantity a hit adds to
        :attr:`probes_reused`, keeping the counter's meaning ("probes not
        sent thanks to the bank") consistent with the exact-key paths.  It
        defaults to the banked collection's own probe slots for the pair.

        ``now``/``max_age`` bound reuse by simulated-time staleness: a
        banked collection older than ``max_age`` relative to ``now`` is
        *not* served (returns ``None``), forcing the caller back to live
        probing — the probe-budget optimizer's guard against reusing
        pair evidence across churn.  Both default to ``None`` (unbounded),
        which preserves the pre-optimizer behaviour byte for byte.
        """
        key = self._pairs.get(frozenset((left, right)))
        if key is None:
            return None
        if max_age is not None and now is not None:
            collected_at = float(key[4])
            if abs(now - collected_at) > max_age:
                return None
        if requested_probes is None:
            banked_rounds = key[2]
            requested_probes = 2 * banked_rounds
        self._count("reused", requested_probes)
        return self._interleaved[key]

    # ------------------------------------------------------------------ #
    # Canonical estimation (the shared estimation stage)
    # ------------------------------------------------------------------ #
    def estimation_free(
        self,
        address: str,
        samples: int,
        interval: float,
        start_time: float,
        max_age: float | None = None,
    ) -> bool:
        """Whether :meth:`estimation_series` would be served without probing.

        The probe-budget scheduler's pre-check: a ``True`` answer means the
        matching read mutates nothing but the reuse counters, so it stays
        allowed even after the budget closes.
        """
        canonical = self._estimation.get((address, samples, interval))
        if canonical is not None:
            collected_at = float(canonical[4])
            if max_age is None or abs(start_time - collected_at) <= max_age:
                return True
        return ("series", address, samples, interval, start_time) in self._series

    def cached_estimation(
        self, address: str, samples: int, interval: float
    ) -> tuple[IpidTimeSeries, float] | None:
        """Peek at the canonical estimation series for one schedule shape.

        Returns ``(series, collected_at)`` without touching the probe
        counters, or ``None`` when no canonical collection exists yet.
        """
        canonical = self._estimation.get((address, samples, interval))
        if canonical is None:
            return None
        return self._series[canonical], float(canonical[4])

    def estimation_series(
        self,
        address: str,
        samples: int,
        interval: float,
        start_time: float,
        max_age: float | None = None,
        early_stop: tuple[int, float] | None = None,
    ) -> tuple[IpidTimeSeries, float, int]:
        """One canonical estimation read per (address, schedule shape).

        Unlike :meth:`series`, which memoises on the exact start time, this
        serves *any* banked canonical collection whose window aligns (same
        sample count and interval) and is no older than ``max_age``
        relative to ``start_time`` — MIDAR, Ally-style and Speedtrap
        estimation all read from one schedule per vantage instead of
        collecting per-validator series.  A staleness-expired canonical
        entry is never silently reused: the read falls back to a live
        collection, which then becomes the new canonical series.

        ``early_stop=(min_responses, max_velocity)`` opts a *fresh*
        collection into stopping as soon as the caller's
        :func:`~repro.baselines.ipid.classify_series` outcome is already
        decided (see :meth:`_collect_estimation`); banked reads are
        unaffected.  Callers that omit it keep the pure-memoisation
        behaviour: a cold read issues exactly the probes
        :func:`~repro.baselines.ipid.collect_series` would.

        Returns ``(series, collected_at, issued)`` where ``issued`` counts
        the fresh network probes spent (the quantity a probe budget must
        be charged and the simulated clock advanced for; zero for a read
        served from the bank).
        """
        canonical = self._estimation.get((address, samples, interval))
        if canonical is not None:
            collected_at = float(canonical[4])
            if max_age is None or abs(start_time - collected_at) <= max_age:
                self._count("reused", samples)
                return self._series[canonical], collected_at, 0
        issued_before = self._probes_issued
        key = ("series", address, samples, interval, start_time)
        if early_stop is None or key in self._series:
            collected = self.series(address, samples, interval, start_time)
        else:
            collected = self._collect_estimation(
                address, samples, interval, start_time, *early_stop
            )
            self._series[key] = collected
        self._estimation[(address, samples, interval)] = key
        return collected, start_time, self._probes_issued - issued_before

    def _collect_estimation(
        self,
        address: str,
        samples: int,
        interval: float,
        start_time: float,
        min_responses: int,
        max_velocity: float,
    ) -> IpidTimeSeries:
        """Collect an estimation series, stopping once its class is decided.

        :func:`~repro.baselines.ipid.shared_counter_test` is adjacency
        based: a bound violation between two consecutive responses stays a
        violation no matter what is appended afterwards, and the response
        count only grows.  So once the collected prefix already fails the
        test with ``min_responses`` responses in hand,
        :func:`~repro.baselines.ipid.classify_series` is guaranteed to
        return ``NON_MONOTONIC`` for the full series — the remaining
        probes buy no information and are skipped.  (Random-IPID targets,
        the bulk of real candidate sets, almost always violate the bound
        within the first few samples.)  The truncated series is banked as
        the canonical collection for this schedule shape, which is safe
        for every consumer classifying under the same or a stricter
        ``max_velocity``: a violation of a looser bound implies one of any
        tighter bound, and velocities are only ever read for ``USABLE``
        addresses, which are never truncated.
        """
        series = IpidTimeSeries(address=address)
        issued = 0
        for index in range(samples):
            timestamp = start_time + index * interval
            series.add(timestamp, self._network.sample_ipid(address, self._vantage, now=timestamp))
            issued += 1
            if series.response_count >= min_responses and not shared_counter_test(
                series.samples, max_velocity=max_velocity
            ):
                break
        self._count("issued", issued)
        return series

    # ------------------------------------------------------------------ #
    # State export/restore (persisted sample banks)
    # ------------------------------------------------------------------ #
    def export_state(self) -> dict:
        """The bank's collected samples and accounting as plain JSON data.

        Everything a reloaded session needs to re-score candidate sets
        offline: the vantage identity, every collected series and
        interleaved collection (with their exact schedule keys), the
        pair-reuse and canonical-estimation maps, and the probe counters.
        ``from_state`` inverts it exactly; :mod:`repro.persist.bank` wraps
        the state in a signature-verified document.
        """
        interleaved_keys = list(self._interleaved)
        key_positions = {key: position for position, key in enumerate(interleaved_keys)}
        return {
            "vantage": {
                "name": self._vantage.name,
                "address": self._vantage.address,
                "distributed": self._vantage.distributed,
            },
            "probes_issued": self._probes_issued,
            "probes_reused": self._probes_reused,
            "series": [
                {
                    "address": key[1],
                    "samples": key[2],
                    "interval": key[3],
                    "start_time": key[4],
                    "points": [[timestamp, value] for timestamp, value in series.samples],
                }
                for key, series in self._series.items()
            ],
            "interleaved": [
                {
                    "members": list(key[1]),
                    "rounds": key[2],
                    "interval": key[3],
                    "start_time": key[4],
                    "points": {
                        address: [[timestamp, value] for timestamp, value in series.samples]
                        for address, series in collection.items()
                    },
                }
                for key, collection in self._interleaved.items()
            ],
            "pairs": [
                [sorted(pair)[0], sorted(pair)[1], key_positions[key]]
                for pair, key in self._pairs.items()
            ],
            "estimation": [
                [address, samples, interval, key[4]]
                for (address, samples, interval), key in self._estimation.items()
            ],
        }

    @classmethod
    def from_state(
        cls, network: SimulatedInternet, state: dict
    ) -> "IpidSampleBank":
        """Rebuild a bank over ``network`` from :meth:`export_state` output.

        The restored bank answers every read its saved counterpart could —
        exact-key, pair-wise, and canonical-estimation — without touching
        the network, which is what makes reloaded sessions re-score
        candidate sets with zero probes.
        """
        vantage = VantagePoint(
            name=str(state["vantage"]["name"]),
            address=str(state["vantage"]["address"]),
            distributed=bool(state["vantage"]["distributed"]),
        )
        bank = cls(network, vantage)
        bank._probes_issued = int(state["probes_issued"])
        bank._probes_reused = int(state["probes_reused"])
        for entry in state["series"]:
            key = (
                "series",
                str(entry["address"]),
                int(entry["samples"]),
                float(entry["interval"]),
                float(entry["start_time"]),
            )
            series = IpidTimeSeries(address=str(entry["address"]))
            series.samples = [
                (float(timestamp), int(value)) for timestamp, value in entry["points"]
            ]
            bank._series[key] = series
        interleaved_keys: list[ScheduleKey] = []
        for entry in state["interleaved"]:
            members = tuple(str(address) for address in entry["members"])
            key = (
                "interleaved",
                members,
                int(entry["rounds"]),
                float(entry["interval"]),
                float(entry["start_time"]),
            )
            collection = {}
            for address, points in entry["points"].items():
                series = IpidTimeSeries(address=str(address))
                series.samples = [
                    (float(timestamp), int(value)) for timestamp, value in points
                ]
                collection[str(address)] = series
            bank._interleaved[key] = collection
            interleaved_keys.append(key)
        for left, right, position in state["pairs"]:
            bank._pairs[frozenset((str(left), str(right)))] = interleaved_keys[
                int(position)
            ]
        for address, samples, interval, start_time in state["estimation"]:
            bank._estimation[(str(address), int(samples), float(interval))] = (
                "series",
                str(address),
                int(samples),
                float(interval),
                float(start_time),
            )
        return bank
