"""The shared IPID sample bank.

MIDAR, Ally and Speedtrap all reduce to the same primitive: collect an IPID
time series from a target on some probing schedule and reason about the
merged sequences.  Before this module each technique probed the simulated
Internet on its own, so validating one candidate set with two techniques
paid for two full probing campaigns against the same targets.

:class:`IpidSampleBank` collects each series **once per (addresses,
schedule)** and shares it across validators: a composed validation (e.g.
MIDAR followed by Ally over the same sampled sets, see
:mod:`repro.validation.runner`) answers the second technique's sample
requests from the bank instead of the network, cutting the probe count —
``benchmarks/bench_validation.py`` asserts the reduction with verdict
parity.

The bank is a pure memoisation layer: a cold bank issues exactly the calls
:func:`~repro.baselines.ipid.collect_series` /
:func:`~repro.baselines.ipid.collect_interleaved` would, in the same order,
so single-technique runs (and the ``MidarProber``/``AllyProber`` shims
built on private banks) behave byte-for-byte like the pre-bank probers.
"""

from __future__ import annotations

from typing import Sequence

from repro import obs
from repro.baselines.ipid import IpidTimeSeries, collect_interleaved, collect_series
from repro.simnet.network import SimulatedInternet, VantagePoint

#: Memoisation key of one collected series or interleaved collection.
ScheduleKey = tuple


class IpidSampleBank:
    """Collect IPID time series once per (addresses, schedule) and share them.

    One bank wraps one (network, vantage) pair — samples taken from
    different vantage points see different loss and rate-limit state, so
    they must not be conflated.  Cached series are treated as immutable.
    """

    def __init__(self, network: SimulatedInternet, vantage: VantagePoint) -> None:
        self._network = network
        self._vantage = vantage
        self._series: dict[ScheduleKey, IpidTimeSeries] = {}
        self._interleaved: dict[ScheduleKey, dict[str, IpidTimeSeries]] = {}
        #: unordered pair -> key of the latest interleaved collection that
        #: probed both addresses together (schedule-agnostic pair reuse).
        self._pairs: dict[frozenset[str], ScheduleKey] = {}
        self._probes_issued = 0
        self._probes_reused = 0

    def _count(self, outcome: str, probes: int) -> None:
        """Track one collection's probe spend (private tally + registry).

        Called per *collection* (a batch of probes), never per probe, so
        the counter cost stays off the simulated-network hot path.
        """
        if outcome == "issued":
            self._probes_issued += probes
        else:
            self._probes_reused += probes
        if obs.is_enabled():
            obs.add(
                "validation.probes", probes, outcome=outcome, vantage=self._vantage.name
            )

    @property
    def network(self) -> SimulatedInternet:
        """The network the bank probes."""
        return self._network

    @property
    def vantage(self) -> VantagePoint:
        """The vantage point every collection probes from."""
        return self._vantage

    @property
    def probes_issued(self) -> int:
        """Probes actually sent to the network (responses and timeouts)."""
        return self._probes_issued

    @property
    def probes_reused(self) -> int:
        """Probes answered from the bank instead of the network."""
        return self._probes_reused

    def series(
        self, address: str, samples: int, interval: float, start_time: float
    ) -> IpidTimeSeries:
        """One address probed ``samples`` times (MIDAR's estimation stage)."""
        key = ("series", address, samples, interval, start_time)
        cached = self._series.get(key)
        if cached is not None:
            self._count("reused", samples)
            return cached
        collected = collect_series(
            self._network,
            address,
            self._vantage,
            samples=samples,
            interval=interval,
            start_time=start_time,
        )
        self._count("issued", samples)
        self._series[key] = collected
        return collected

    def interleaved(
        self,
        addresses: Sequence[str],
        rounds: int,
        interval: float,
        start_time: float,
    ) -> dict[str, IpidTimeSeries]:
        """A round-robin interleaved collection over ``addresses``."""
        members = tuple(addresses)
        key = ("interleaved", members, rounds, interval, start_time)
        cached = self._interleaved.get(key)
        if cached is not None:
            self._count("reused", rounds * len(members))
            return cached
        collected = collect_interleaved(
            self._network,
            list(members),
            self._vantage,
            rounds=rounds,
            interval=interval,
            start_time=start_time,
        )
        self._count("issued", rounds * len(members))
        self._interleaved[key] = collected
        for position, left in enumerate(members):
            for right in members[position + 1 :]:
                self._pairs[frozenset((left, right))] = key
        return collected

    def cached_interleaved(
        self, left: str, right: str, requested_probes: int | None = None
    ) -> dict[str, IpidTimeSeries] | None:
        """Any banked interleaved collection that probed both addresses.

        Schedule-agnostic: this is how a second technique (Ally) reuses the
        series a first one (MIDAR corroboration) already paid for.  Returns
        the most recently collected match, or ``None``.

        ``requested_probes`` is what the caller's own schedule would have
        issued for this pair — the quantity a hit adds to
        :attr:`probes_reused`, keeping the counter's meaning ("probes not
        sent thanks to the bank") consistent with the exact-key paths.  It
        defaults to the banked collection's own probe slots for the pair.
        """
        key = self._pairs.get(frozenset((left, right)))
        if key is None:
            return None
        if requested_probes is None:
            banked_rounds = key[2]
            requested_probes = 2 * banked_rounds
        self._count("reused", requested_probes)
        return self._interleaved[key]
