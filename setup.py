"""Setuptools shim.

The canonical build configuration lives in ``pyproject.toml``; this file
exists so that legacy editable installs (``pip install -e . --no-use-pep517``)
work on environments without the ``wheel`` package, e.g. offline machines.
"""

from setuptools import setup

setup()
