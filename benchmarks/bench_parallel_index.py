"""Benchmark of the sharded parallel index build.

Races :func:`repro.api.parallel.build_index_parallel` against the serial
:meth:`ObservationIndex.build` over the union dataset, asserting that the
two produce identical index state and a bit-identical report (by
:func:`report_signature`) regardless of timing.

Serial/parallel timings and the transport exercised (shared-memory vs the
legacy fork/spawn object shipping) are always printed and recorded into
``BENCH_parallel_index.json`` — the wall-clock *assertion* only arms when
the machine can actually win: multiple CPU cores and enough observations
that pool-startup overhead is amortised.  On a single-core machine the
speedup is still measured and reported (and will honestly be < 1x).

Run with the usual harness, e.g.::

    REPRO_BENCH_SCALE=1.0 PYTHONPATH=src python -m pytest \
        benchmarks/bench_parallel_index.py \
        -o python_files='bench_*.py' -o python_functions='bench_*' -q -s
"""

import os
import time

from repro.api.parallel import build_index_parallel, last_build_stats, resolve_parallel
from repro.core.engine import ObservationIndex, ResolutionEngine, report_signature

#: Minimum *serial* build time before the speedup assertion arms: the pool
#: pays a fixed ~100-200 ms for startup, parent-side packing and pickling
#: the per-shard indexes back, so a win is only guaranteed once the serial
#: pass dwarfs that overhead (scale 1.0 builds in well under the floor by
#: design; raise REPRO_BENCH_SCALE to arm the race).
_SPEEDUP_FLOOR_SECONDS = 0.5


def _observations(scenario):
    return list(scenario.observations_for("union"))


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return result, time.perf_counter() - start


def bench_parallel_index_parity(benchmark, scenario, bench_json):
    """Sharded build must reproduce the serial index and report exactly."""
    observations = _observations(scenario)
    workers = min(4, os.cpu_count() or 1) or 2
    workers = max(workers, 2)  # exercise the sharded path even on 1 CPU
    serial = ObservationIndex.build(observations)
    parallel = benchmark.pedantic(
        lambda: build_index_parallel(observations, workers=workers), rounds=1, iterations=1
    )
    build = last_build_stats()
    print()
    print(
        f"parity build over {build.transport}: pack {1000 * build.pack_seconds:.1f} ms, "
        f"build {1000 * build.build_seconds:.1f} ms, merge {1000 * build.merge_seconds:.1f} ms"
    )
    bench_json.record(
        "parallel_index",
        "parity",
        observations=len(observations),
        workers=workers,
        transport=build.transport,
        pack_seconds=build.pack_seconds,
        build_seconds=build.build_seconds,
        merge_seconds=build.merge_seconds,
    )
    assert parallel.state_signature() == serial.state_signature()
    engine = ResolutionEngine()
    assert report_signature(engine.report(parallel, name="union")) == report_signature(
        engine.report(serial, name="union")
    )


def bench_parallel_vs_serial(benchmark, scenario, bench_json):
    """Head-to-head wall clock: serial build vs sharded parallel build.

    Timings and the transport used are always printed and recorded,
    whatever the hardware; only the speedup *assertion* is conditional.
    """
    observations = _observations(scenario)
    cpus = os.cpu_count() or 1
    workers = min(4, max(2, cpus))

    rounds = 3
    serial_time = min(
        _timed(lambda: ObservationIndex.build(observations))[1] for _ in range(rounds)
    )
    parallel_time = min(
        _timed(lambda: build_index_parallel(observations, workers=workers))[1]
        for _ in range(rounds)
    )
    transport = last_build_stats().transport
    speedup = serial_time / parallel_time if parallel_time else float("inf")
    armed = cpus >= 2 and serial_time >= _SPEEDUP_FLOOR_SECONDS
    print()
    print(
        f"serial {serial_time * 1000:.1f} ms vs parallel({workers}, {transport}) "
        f"{parallel_time * 1000:.1f} ms ({speedup:.2f}x) over "
        f"{len(observations)} observations on {cpus} CPU(s)"
        f"{'' if armed else ' — speedup assertion dormant'}"
    )
    bench_json.record(
        "parallel_index",
        "parallel_vs_serial",
        observations=len(observations),
        cpus=cpus,
        workers=workers,
        transport=transport,
        serial_seconds=serial_time,
        parallel_seconds=parallel_time,
        speedup=speedup,
        asserted=armed,
    )

    report, _ = _timed(
        lambda: resolve_parallel(observations, name="union", workers=workers)
    )
    assert len(report.ipv4_union) > 0

    # Without real parallel hardware, or with a serial pass small enough
    # that fixed pool overhead dominates, the race measures process startup
    # rather than the index pass — record the ratio but don't assert on it.
    if armed:
        assert parallel_time < serial_time

    benchmark.pedantic(
        lambda: build_index_parallel(observations, workers=workers), rounds=1, iterations=1
    )
