"""Benchmark / regeneration of Table 3 — alias sets overview."""

from repro.experiments import table3


def bench_table3(benchmark, scenario):
    result = benchmark.pedantic(lambda: table3.build(scenario), rounds=1, iterations=1)
    print()
    print(table3.render(result))

    ssh_union = result.row("ipv4", "SSH", "union")
    snmp_union = result.row("ipv4", "SNMPv3", "union")
    bgp_union = result.row("ipv4", "BGP", "union")
    union_union = result.row("ipv4", "Union", "union")
    ssh_active = result.row("ipv4", "SSH", "active")
    ssh_censys = result.row("ipv4", "SSH", "censys")

    # Headline: the full union identifies roughly twice as many non-singleton
    # IPv4 alias sets as SNMPv3 alone, and most sets come from SSH.
    assert union_union.sets >= 1.8 * snmp_union.sets
    assert ssh_union.sets > snmp_union.sets > bgp_union.sets
    # Censys adds substantial SSH coverage over the active scan alone.
    assert ssh_censys.sets > ssh_active.sets
    assert ssh_union.sets >= max(ssh_active.sets, ssh_censys.sets)
    # Composition of the union: SSH/BGP-identifiable sets dominate.
    assert result.union_ssh_bgp_share > 0.5
    # IPv6: SSH contributes the most sets, as in the paper.
    assert result.row("ipv6", "SSH", "active").sets >= result.row("ipv6", "SNMPv3", "active").sets
