"""Benchmark / regeneration of Table 4 — dual-stack sets."""

from repro.experiments import table4


def bench_table4(benchmark, scenario):
    result = benchmark.pedantic(lambda: table4.build(scenario), rounds=1, iterations=1)
    print()
    print(table4.render(result))

    ssh = result.row("SSH")
    bgp = result.row("BGP")
    snmp = result.row("SNMPv3")
    union = result.row("Union")

    # Headline: SSH (and thus the union) identifies an order of magnitude
    # more dual-stack sets than the SNMPv3 baseline (paper: ~30x).
    assert ssh.sets >= 10 * max(snmp.sets, 1)
    assert union.sets >= ssh.sets
    assert ssh.sets > bgp.sets
    # Nearly all union sets are identifiable via SSH or BGP.
    assert result.ssh_bgp_share > 0.9
    # Most sets pair a single IPv4 with a single IPv6 address.
    assert result.one_to_one_share > 0.5
