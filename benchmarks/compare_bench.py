"""Diff fresh benchmark trajectories against the committed baselines.

The repo root carries one ``BENCH_<module>.json`` per benchmark module,
recorded at ``REPRO_BENCH_SCALE=0.2`` — the same scale the CI bench smoke
runs at.  This script compares a fresh ``--bench-json`` output directory
against those baselines:

* **Hard failures** (exit 1): a baseline module with no fresh
  counterpart, a baseline record name missing from the fresh run, or a
  record whose ``asserted`` flag regressed from ``true`` to ``false``
  (a perf assertion that used to arm no longer does).
* **Warnings** (exit 0): timing fields (``*seconds*`` keys,
  ``overhead_fraction``) slower than baseline beyond the tolerance, and
  ``speedup`` fields below baseline beyond it.  CI machines are noisy;
  timings inform, they do not gate.

Usage::

    PYTHONPATH=src python benchmarks/compare_bench.py \
        --baseline . --fresh bench-results
"""

import argparse
import json
import sys
from pathlib import Path

#: Fractional slowdown (or speedup loss) beyond which a timing warning fires.
TIMING_TOLERANCE = 0.25


def _is_timing_key(key: str) -> bool:
    return "seconds" in key or key == "overhead_fraction"


def _load_modules(directory: Path) -> dict[str, dict]:
    modules = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        modules[path.stem.removeprefix("BENCH_")] = json.loads(path.read_text())
    return modules


def _records_by_name(document: dict) -> dict[str, dict]:
    return {record["name"]: record for record in document.get("records", ())}


def compare(baseline_dir: Path, fresh_dir: Path) -> tuple[list[str], list[str]]:
    """Return (hard failures, warnings) from diffing the two directories."""
    failures: list[str] = []
    warnings: list[str] = []
    baselines = _load_modules(baseline_dir)
    fresh = _load_modules(fresh_dir)
    if not baselines:
        failures.append(f"no BENCH_*.json baselines found in {baseline_dir}")
        return failures, warnings

    for module, baseline in sorted(baselines.items()):
        if module not in fresh:
            failures.append(f"{module}: no fresh BENCH_{module}.json produced")
            continue
        baseline_records = _records_by_name(baseline)
        fresh_records = _records_by_name(fresh[module])
        for name, old in sorted(baseline_records.items()):
            new = fresh_records.get(name)
            if new is None:
                failures.append(f"{module}/{name}: record missing from fresh run")
                continue
            if old.get("asserted") is True and new.get("asserted") is False:
                failures.append(
                    f"{module}/{name}: 'asserted' regressed true -> false "
                    "(a perf assertion no longer arms)"
                )
            for key, old_value in old.items():
                new_value = new.get(key)
                if not isinstance(old_value, (int, float)) or isinstance(
                    old_value, bool
                ):
                    continue
                if not isinstance(new_value, (int, float)) or isinstance(
                    new_value, bool
                ):
                    continue
                if _is_timing_key(key) and old_value > 0:
                    slowdown = (new_value - old_value) / old_value
                    if slowdown > TIMING_TOLERANCE:
                        warnings.append(
                            f"{module}/{name}.{key}: {old_value:.4f} -> "
                            f"{new_value:.4f} (+{100 * slowdown:.0f}%)"
                        )
                elif key == "speedup" and old_value > 0:
                    loss = (old_value - new_value) / old_value
                    if loss > TIMING_TOLERANCE:
                        warnings.append(
                            f"{module}/{name}.{key}: {old_value:.2f}x -> "
                            f"{new_value:.2f}x (-{100 * loss:.0f}%)"
                        )
    return failures, warnings


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--baseline", type=Path, default=Path("."), help="directory of committed baselines"
    )
    parser.add_argument(
        "--fresh", type=Path, required=True, help="fresh --bench-json output directory"
    )
    args = parser.parse_args(argv)

    failures, warnings = compare(args.baseline, args.fresh)
    for line in warnings:
        print(f"warning: {line}")
    for line in failures:
        print(f"FAIL: {line}")
    if failures:
        print(f"{len(failures)} hard failure(s); timings warn only.")
        return 1
    print(
        f"bench baselines OK: {len(warnings)} timing warning(s), no parity regressions."
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
