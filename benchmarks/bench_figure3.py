"""Benchmark / regeneration of Figure 3 — IPv4 addresses per alias set."""

from repro.experiments import figure3


def bench_figure3(benchmark, scenario):
    result = benchmark.pedantic(lambda: figure3.build(scenario), rounds=1, iterations=1)
    print()
    print(figure3.render(result))
    # Print the ECDF series (the data behind the figure) for the SSH curves.
    for label in ("Active SSH", "Active SNMPv3", "Active BGP"):
        series = result.curve(label).ecdf.series(points=[2, 5, 10, 50, 100, 1000])
        rendered = ", ".join(f"F({int(x)})={fraction:.2f}" for x, fraction in series)
        print(f"{label}: {rendered}")

    ssh = result.curve("Active SSH")
    bgp = result.curve("Active BGP")
    snmp = result.curve("Active SNMPv3")
    # Paper shape: >60% of SSH sets contain exactly two addresses; BGP and
    # SNMPv3 sets are larger; the bulk of every curve sits below 100.
    assert ssh.fraction_exactly_two() > 0.6
    assert bgp.fraction_exactly_two() < 0.35
    assert snmp.fraction_exactly_two() < 0.35
    for curve in result.curves.values():
        if curve.set_count:
            assert curve.fraction_under_hundred() > 0.9
