"""Benchmarks of the scanning substrate against the simulated Internet.

These report how many addresses per second the two scan phases sustain —
useful for choosing a scenario scale — and double as end-to-end smoke tests
of the probe path (liveness scan, application grab, alias grouping).
"""

from repro.core.alias_resolution import AliasResolver
from repro.net.addresses import AddressFamily
from repro.scanner.zgrab import ZgrabScanner
from repro.scanner.zmap import ZmapScanner
from repro.simnet.device import ServiceType
from repro.simnet.network import VantagePoint

VP = VantagePoint(name="bench-vp", distributed=True)


def bench_zmap_syn_scan(benchmark, scenario):
    network = scenario.network
    targets = sorted(network.all_addresses(AddressFamily.IPV4))[:4000]
    scanner = ZmapScanner(network, VP, seed=3)

    result = benchmark.pedantic(lambda: scanner.scan(targets, 22), rounds=1, iterations=1)
    print(f"\nSYN scan: {result.probed} probes, {len(result.responsive)} responsive")
    assert result.probed == len(targets)


def bench_zgrab_ssh_grab(benchmark, scenario):
    network = scenario.network
    ssh_addresses = [
        address
        for device in network.devices()
        for address in device.service_addresses(ServiceType.SSH)
        if ":" not in address
    ][:1500]
    grabber = ZgrabScanner(network, VP)

    records = benchmark.pedantic(lambda: grabber.grab(ServiceType.SSH, ssh_addresses), rounds=1, iterations=1)
    print(f"\nSSH grab: {len(records)} records from {len(ssh_addresses)} targets")
    assert len(records) >= 0.8 * len(ssh_addresses)


def bench_alias_grouping_throughput(benchmark, scenario):
    observations = list(scenario.union_ipv4)
    resolver = AliasResolver()

    collection = benchmark(lambda: resolver.group(observations, protocol=ServiceType.SSH, family=AddressFamily.IPV4))
    assert len(collection) > 0
