"""Benchmark of incremental re-resolution on a churning campaign.

A four-snapshot longitudinal campaign (weekly interval, 2% address churn
per interval — inside the paper-motivated 1-5% band) is collected once;
the benchmark then races, per snapshot, the incremental
:class:`~repro.longitudinal.engine.LongitudinalEngine` delta replay
against a from-scratch :meth:`~repro.core.engine.ResolutionEngine.resolve`
of the same snapshot.  On every snapshot the two reports must be
identical (:func:`~repro.core.engine.report_signature`); at
``REPRO_BENCH_SCALE=1.0`` the incremental path must win by at least 3x.

The extraction-count assertions show *why*: a delta replay touches only
the few-percent of observations that changed, while a rebuild re-extracts
every identifier of every snapshot.

Run with the usual harness, e.g.::

    REPRO_BENCH_SCALE=1.0 PYTHONPATH=src python -m pytest benchmarks \
        -o python_files='bench_*.py' -o python_functions='bench_*' -q
"""

import gc
import os
import time

import pytest

from repro.core.engine import ResolutionEngine, report_signature
from repro.core.identifiers import count_extractions
from repro.experiments.scenario import ScenarioConfig
from repro.longitudinal import LongitudinalCampaign, LongitudinalConfig, LongitudinalEngine
from repro.simnet.topology import generate_topology
from repro.sources.hitlist import HitlistConfig, build_ipv6_hitlist

#: Minimum per-snapshot observation count before wall-clock assertions fire
#: (below this, constant factors dominate and the race is noise).
_ASSERT_THRESHOLD = 5000

#: Required speedup of incremental re-resolution over full rebuilds.
_REQUIRED_SPEEDUP = 3.0


@pytest.fixture(scope="module")
def captures():
    """Collect one churning campaign (own network — campaigns inject churn)."""
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "42"))
    config = ScenarioConfig(scale=scale, seed=seed)
    network = generate_topology(config.topology_config())
    hitlist = build_ipv6_hitlist(
        network,
        HitlistConfig(
            server_coverage=config.hitlist_server_coverage,
            router_coverage=config.hitlist_router_coverage,
            seed=seed,
        ),
    )
    campaign = LongitudinalCampaign(
        network,
        hitlist=hitlist,
        config=LongitudinalConfig(snapshots=4, churn_fraction=0.02, seed=seed),
    )
    return campaign.collect()


def _incremental_replay(captures):
    """Bootstrap + apply every delta; returns (timed apply total, reports)."""
    engine = LongitudinalEngine()
    engine.bootstrap(captures[0].observations, name=captures[0].name)
    gc.collect()  # do not bill the applies for the bootstrap's garbage
    total = 0.0
    reports = []
    for capture in captures[1:]:
        start = time.perf_counter()
        resolution = engine.apply(capture.delta, name=capture.name)
        total += time.perf_counter() - start
        reports.append(resolution.report)
    return total, reports


def _full_replay(captures):
    """From-scratch resolve of every post-bootstrap snapshot."""
    engine = ResolutionEngine()
    gc.collect()
    total = 0.0
    reports = []
    for capture in captures[1:]:
        start = time.perf_counter()
        reports.append(engine.resolve(capture.observations, name=capture.name))
        total += time.perf_counter() - start
    return total, reports


def bench_incremental_vs_full_rebuild(benchmark, captures, bench_json):
    """The headline race: delta replay vs rebuild, with parity on every snapshot."""
    observations_per_snapshot = len(captures[0].observations)

    # Extraction-count proof: the incremental path touches only the delta.
    engine = LongitudinalEngine()
    engine.bootstrap(captures[0].observations, name=captures[0].name)
    delta_size = 0
    with count_extractions() as incremental_counter:
        for capture in captures[1:]:
            engine.apply(capture.delta, name=capture.name)
            delta_size += len(capture.delta.added) + len(capture.delta.removed)
    # Removed observations reuse the identifier cached when they were added,
    # so a delta replay extracts at most the *added* observations (fewer when
    # an observation reappears after a temporary loss).
    assert incremental_counter.count <= delta_size
    with count_extractions() as full_counter:
        _full_replay(captures)
    assert full_counter.count == observations_per_snapshot_total(captures)

    rounds = 3
    incremental_times = []
    full_times = []
    for _ in range(rounds):
        incremental_time, incremental_reports = _incremental_replay(captures)
        full_time, full_reports = _full_replay(captures)
        for incremental_report, full_report in zip(incremental_reports, full_reports, strict=True):
            assert report_signature(incremental_report) == report_signature(full_report)
        incremental_times.append(incremental_time)
        full_times.append(full_time)
    incremental_best = min(incremental_times)
    full_best = min(full_times)
    speedup = full_best / incremental_best
    print()
    print(
        f"incremental {1000 * incremental_best:.0f} ms vs full rebuild "
        f"{1000 * full_best:.0f} ms over {len(captures) - 1} snapshots of "
        f"~{observations_per_snapshot} observations ({speedup:.2f}x; "
        f"{incremental_counter.count} delta extractions vs {full_counter.count} rebuild extractions)"
    )
    bench_json.record(
        "longitudinal",
        "incremental_vs_full_rebuild",
        snapshots=len(captures) - 1,
        observations_per_snapshot=observations_per_snapshot,
        incremental_seconds=incremental_best,
        full_seconds=full_best,
        speedup=speedup,
        delta_extractions=incremental_counter.count,
        rebuild_extractions=full_counter.count,
        asserted=observations_per_snapshot >= _ASSERT_THRESHOLD,
    )
    if observations_per_snapshot >= _ASSERT_THRESHOLD:
        assert speedup >= _REQUIRED_SPEEDUP, (
            f"incremental re-resolution only {speedup:.2f}x faster than rebuild "
            f"(required {_REQUIRED_SPEEDUP}x)"
        )

    benchmark.pedantic(lambda: _incremental_replay(captures), rounds=1, iterations=1)


def observations_per_snapshot_total(captures):
    """Observations a full rebuild of every post-bootstrap snapshot touches."""
    return sum(len(capture.observations) for capture in captures[1:])


def bench_campaign_resolution(benchmark, captures):
    """End-to-end incremental resolution of the whole campaign."""
    campaign_config = LongitudinalConfig(snapshots=len(captures), churn_fraction=0.02)

    def resolve():
        engine = LongitudinalEngine()
        resolutions = [engine.bootstrap(captures[0].observations, name=captures[0].name)]
        for capture in captures[1:]:
            resolutions.append(engine.apply(capture.delta, name=capture.name))
        return resolutions

    resolutions = benchmark.pedantic(resolve, rounds=1, iterations=1)
    assert len(resolutions) == campaign_config.snapshots
    # Every post-bootstrap snapshot reports how its union sets evolved.
    assert all(resolution.ipv4_delta is not None for resolution in resolutions[1:])


def bench_observation_diff(benchmark, captures):
    """Snapshot diffing in isolation (the input stage of a delta replay)."""
    from repro.longitudinal.delta import diff_observations

    previous = captures[0].observations
    current = captures[1].observations
    delta = benchmark.pedantic(
        lambda: diff_observations(previous, current), rounds=1, iterations=1
    )
    assert delta.added and delta.removed
    assert delta.unchanged > len(delta.added)
