"""Benchmark of the probe-budget optimizer.

Three claims are measured and asserted (always, at whatever
``REPRO_BENCH_SCALE`` is in effect):

* **Probe reduction with verdict parity** — a midar+ally+speedtrap
  validation run under an uncapped
  :class:`~repro.validation.budget.ProbeBudgetOptimizer` (shared
  estimation, velocity cache, pass reuse, transitive pair skipping)
  issues **at least 40 % fewer** network probes than the same validators
  through the plain pipelines, with byte-identical decisions — candidate,
  testable, agrees, partition and per-address classes — for every set of
  every validator.
* **Zero-probe reload** — after ``session.save``/``ReproSession.load``,
  re-running the same validators re-scores entirely from the persisted
  sample banks: exactly zero calls reach the network.
* **Graceful degradation** — a capped run marks the sets it cannot
  afford ``unresolved`` and never flips a verdict: every set the capped
  run still resolves decides exactly as the uncapped run did.

The scenario probes from a distributed vantage with ``loss_rate=0`` for
the same reason ``bench_validation.py`` does: it isolates the saving from
per-vantage IDS budgets and stochastic per-probe loss, which would
otherwise flip borderline responses at probe times only one schedule
visits.

Run with the usual harness, e.g.::

    REPRO_BENCH_SCALE=0.2 PYTHONPATH=src python -m pytest \
        benchmarks/bench_budget.py \
        -o python_files='bench_*.py' -o python_functions='bench_*' -q
"""

import os
import time

import pytest

from repro.api.config import ScenarioConfig
from repro.api.session import ReproSession
from repro.validation.budget import is_unresolved
from repro.validation.spec import ally, midar, sample, speedtrap

#: Sample size / seed of every comparison (the Table 2 defaults).
_SIZE, _SEED = 150, 7

#: Minimum probe saving the uncapped optimizer must deliver.
_MIN_SAVING = 0.40


def _bench_config(**overrides):
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "42"))
    return ScenarioConfig(scale=scale, seed=seed, **overrides)


def _count_probes(network):
    """Count ``sample_ipid`` calls at the network boundary."""
    counter = {"probes": 0}
    original = network.sample_ipid

    def counting(address, vantage, now=0.0):
        counter["probes"] += 1
        return original(address, vantage, now=now)

    network.sample_ipid = counting
    return counter


def _specs():
    ipv4 = dict(
        source="active",
        protocol="ssh",
        family="ipv4",
        start_after="active-ipv6",
        distributed=True,
    )
    ipv6 = dict(
        source="active",
        protocol="ssh",
        family="ipv6",
        start_after="active-ipv6",
        distributed=True,
    )
    return (
        sample(midar(**ipv4), size=_SIZE, seed=_SEED, max_size=10),
        sample(ally(**ipv4), size=_SIZE, seed=_SEED, max_size=10),
        sample(speedtrap(**ipv6), size=_SIZE, seed=_SEED, max_size=10),
    )


def _decisions(report):
    return [
        (v.candidate, v.testable, v.agrees, v.partition, v.classes)
        for v in report.verdicts
    ]


def _plain_run(config):
    session = ReproSession(config)
    session.report("active")
    session.dataset("active-ipv6")
    counter = _count_probes(session.network)
    reports = [session.validate(spec) for spec in _specs()]
    return counter["probes"], reports


def _budgeted_run(config, budget=None):
    session = ReproSession(config)
    session.report("active")
    session.dataset("active-ipv6")
    counter = _count_probes(session.network)
    result = session.validate_budgeted(list(_specs()), budget=budget)
    return counter["probes"], result, session


def bench_budget_probe_reduction_with_parity(benchmark, bench_json):
    """Uncapped optimizer: >= 40% fewer probes, byte-identical decisions."""
    config = _bench_config(loss_rate=0.0)
    plain_probes, plain_reports = _plain_run(config)

    start = time.perf_counter()
    budgeted_probes, result, _ = _budgeted_run(config)
    elapsed = time.perf_counter() - start

    for plain_report, budgeted in zip(plain_reports, result.reports):
        assert _decisions(budgeted) == _decisions(plain_report), (
            f"optimized {plain_report.validator} verdicts diverged from the "
            "plain pipeline"
        )
    saving = 1 - budgeted_probes / plain_probes
    assert saving >= _MIN_SAVING, (
        f"optimizer saved only {saving:.1%} of {plain_probes} probes "
        f"(budgeted run issued {budgeted_probes}); the bar is {_MIN_SAVING:.0%}"
    )
    assert result.spent == budgeted_probes

    print()
    print(
        f"plain pipelines: {plain_probes} probes; optimized: {budgeted_probes} "
        f"({saving:.1%} fewer; decision parity held over "
        f"{sum(r.candidates for r in plain_reports)} sets, {1000 * elapsed:.0f} ms)"
    )
    bench_json.record(
        "budget",
        "probe_reduction_with_parity",
        seconds=elapsed,
        plain_probes=plain_probes,
        budgeted_probes=budgeted_probes,
        saving=round(saving, 4),
        asserted=True,
    )
    benchmark.pedantic(lambda: budgeted_probes, rounds=1, iterations=1)


def bench_budget_zero_probe_reload(benchmark, bench_json, tmp_path):
    """A reloaded session re-scores the same validators fully offline."""
    config = _bench_config(loss_rate=0.0)
    _, result, session = _budgeted_run(config)
    directory = tmp_path / "session"
    session.save(directory)

    start = time.perf_counter()
    loaded = ReproSession.load(directory)
    counter = _count_probes(loaded.network)
    reloaded = loaded.validate_budgeted(list(_specs()))
    elapsed = time.perf_counter() - start

    assert counter["probes"] == 0, (
        f"a reloaded session issued {counter['probes']} probes re-scoring "
        "banked schedules; the contract is exactly zero"
    )
    for before, after in zip(result.reports, reloaded.reports):
        assert _decisions(after) == _decisions(before), (
            f"offline re-score of {before.validator} diverged from the live run"
        )

    print()
    print(
        f"saved -> loaded -> re-scored {sum(r.candidates for r in result.reports)} "
        f"sets with 0 network probes ({1000 * elapsed:.0f} ms)"
    )
    bench_json.record(
        "budget",
        "zero_probe_reload",
        seconds=elapsed,
        reload_probes=counter["probes"],
        asserted=True,
    )
    benchmark.pedantic(lambda: counter["probes"], rounds=1, iterations=1)


def bench_budget_capped_never_flips(benchmark, bench_json):
    """A capped run marks skipped sets unresolved and never flips a verdict."""
    config = _bench_config(loss_rate=0.0)
    _, uncapped, _ = _budgeted_run(config)
    cap = uncapped.spent // 3

    start = time.perf_counter()
    _, capped, _ = _budgeted_run(config, budget=cap)
    elapsed = time.perf_counter() - start

    assert capped.closed and capped.spent <= cap
    assert capped.unresolved_count > 0, "the cap was never hit"
    resolved = flips = 0
    for uncapped_report, capped_report in zip(uncapped.reports, capped.reports):
        for full, cut in zip(uncapped_report.verdicts, capped_report.verdicts):
            if is_unresolved(cut):
                continue
            resolved += 1
            if (cut.testable, cut.agrees, cut.partition) != (
                full.testable,
                full.agrees,
                full.partition,
            ):
                flips += 1
    assert resolved > 0, "the capped run resolved nothing"
    assert flips == 0, f"{flips} verdicts flipped under the cap"

    print()
    print(
        f"capped at {cap} of {uncapped.spent} probes: {resolved} sets resolved "
        f"identically, {capped.unresolved_count} unresolved, 0 flips "
        f"({1000 * elapsed:.0f} ms)"
    )
    bench_json.record(
        "budget",
        "capped_never_flips",
        seconds=elapsed,
        cap=cap,
        resolved=resolved,
        unresolved=capped.unresolved_count,
        flips=flips,
        asserted=True,
    )
    benchmark.pedantic(lambda: flips, rounds=1, iterations=1)


if __name__ == "__main__":  # pragma: no cover - ad-hoc runs
    pytest.main([__file__, "-o", "python_files=bench_*.py",
                 "-o", "python_functions=bench_*", "--benchmark-disable", "-q", "-s"])
