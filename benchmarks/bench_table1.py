"""Benchmark / regeneration of Table 1 — service scanning dataset overview."""

from repro.experiments import table1


def bench_table1(benchmark, scenario):
    result = benchmark.pedantic(lambda: table1.build(scenario), rounds=1, iterations=1)
    print()
    print(table1.render(result))

    ssh = result.row("SSH")
    bgp = result.row("BGP")
    snmp = result.row("SNMPv3")
    # Paper shape: SSH dwarfs BGP in responsive IPs; the union is at least as
    # large as either individual source; Censys covers SSH at least as well
    # as the rate-limited single vantage point.
    assert ssh.active_ips > bgp.active_ips
    assert ssh.union_ips >= max(ssh.active_ips, ssh.censys_ips)
    assert ssh.censys_ips >= ssh.active_ips
    assert snmp.active_ips > 0
    # IPv6 coverage is much smaller than IPv4 (hitlist-limited).
    assert result.row("SSH (IPv6)", family="ipv6").active_ips < ssh.active_ips
