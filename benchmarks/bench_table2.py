"""Benchmark / regeneration of Table 2 — alias set validation."""

from repro.experiments import table2


def bench_table2(benchmark, scenario):
    result = benchmark.pedantic(
        lambda: table2.build(scenario, midar_sample_size=120), rounds=1, iterations=1
    )
    print()
    print(table2.render(result))

    # Paper shape: every cross-protocol pair agrees on >= 95% of comparable
    # sets; MIDAR can only test a small fraction of the sampled SSH sets but
    # agrees with the vast majority of those it can test.
    for pair in ("SSH-BGP", "SSH-SNMPv3", "BGP-SNMPv3"):
        row = result.row(pair)
        if row.sample_size:
            assert row.agreement_rate >= 0.9
    midar = result.row("SSH-MIDAR")
    assert result.midar_coverage < 0.6
    if midar.sample_size:
        assert midar.agreement_rate >= 0.8
