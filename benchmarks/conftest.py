"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper.  The
expensive part — generating the simulated Internet and collecting the active
and Censys datasets — happens once per session in the :func:`scenario`
fixture; the benchmarked callables are the aggregation steps that produce
the table or figure from those datasets.

Set ``REPRO_BENCH_SCALE`` to change the size of the simulated Internet
(default 1.0, roughly 20k addresses).

Pass ``--bench-json DIR`` (or set ``REPRO_BENCH_JSON``) to record every
benchmark's measurements as ``BENCH_<module>.json`` trajectory files: one
document per benchmark module, carrying the run context (scale, seed,
python, CPU count) and the records each benchmark emitted through the
:func:`bench_json` fixture.  CI uploads these as workflow artifacts so each
PR's perf trajectory is tracked; without the option the fixture still
collects records but writes nothing.
"""

import json
import os
import platform
import sys
from pathlib import Path

import pytest

from repro.experiments.scenario import PaperScenario, ScenarioConfig


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json",
        action="store",
        default=None,
        metavar="DIR",
        help="directory to write BENCH_<module>.json perf trajectories into "
        "(defaults to $REPRO_BENCH_JSON when set)",
    )


def _bench_scale() -> float:
    return float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))


def _bench_seed() -> int:
    return int(os.environ.get("REPRO_BENCH_SEED", "42"))


class BenchRecorder:
    """Collects per-module benchmark records and writes ``BENCH_*.json``."""

    def __init__(self, directory: Path | None) -> None:
        self.directory = directory
        self.context = {
            "scale": _bench_scale(),
            "seed": _bench_seed(),
            "python": platform.python_version(),
            "cpus": os.cpu_count() or 1,
        }
        self._modules: dict[str, list[dict]] = {}

    def record(self, module: str, name: str, **values) -> None:
        """Add one record (arbitrary JSON-serialisable values) to a module."""
        self._modules.setdefault(module, []).append({"name": name, **values})

    def flush(self) -> list[Path]:
        """Write one ``BENCH_<module>.json`` per recorded module."""
        if self.directory is None:
            return []
        self.directory.mkdir(parents=True, exist_ok=True)
        written = []
        for module, records in sorted(self._modules.items()):
            path = self.directory / f"BENCH_{module}.json"
            path.write_text(
                json.dumps({**self.context, "records": records}, indent=2) + "\n"
            )
            written.append(path)
        return written


@pytest.fixture(scope="session")
def bench_json(request):
    """Session-wide benchmark recorder; flushed to disk at session end."""
    directory = request.config.getoption("--bench-json") or os.environ.get(
        "REPRO_BENCH_JSON"
    )
    recorder = BenchRecorder(Path(directory) if directory else None)
    yield recorder
    for path in recorder.flush():
        print(f"wrote {path}", file=sys.stderr)


@pytest.fixture(scope="session")
def scenario():
    built = PaperScenario(ScenarioConfig(scale=_bench_scale(), seed=_bench_seed()))
    # Materialise the datasets and reports once so that the per-table
    # benchmarks measure aggregation, not data collection.
    built.report("active")
    built.report("censys")
    built.report("union")
    return built
