"""Shared fixtures for the benchmark harness.

Every ``bench_*`` module regenerates one table or figure of the paper.  The
expensive part — generating the simulated Internet and collecting the active
and Censys datasets — happens once per session in the :func:`scenario`
fixture; the benchmarked callables are the aggregation steps that produce
the table or figure from those datasets.

Set ``REPRO_BENCH_SCALE`` to change the size of the simulated Internet
(default 1.0, roughly 20k addresses).
"""

import os

import pytest

from repro.experiments.scenario import PaperScenario, ScenarioConfig


@pytest.fixture(scope="session")
def scenario():
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "42"))
    built = PaperScenario(ScenarioConfig(scale=scale, seed=seed))
    # Materialise the datasets and reports once so that the per-table
    # benchmarks measure aggregation, not data collection.
    built.report("active")
    built.report("censys")
    built.report("union")
    return built
