"""Benchmark / regeneration of Table 6 — top ASes for IPv6 / dual-stack sets."""

from repro.experiments import table6
from repro.simnet.asn import AsRole


def bench_table6(benchmark, scenario):
    result = benchmark.pedantic(lambda: table6.build(scenario), rounds=1, iterations=1)
    print()
    print(table6.render(result))

    # Paper shape: the dual-stack top-10 is led by cloud providers and the
    # top three ASes hold a large share of all dual-stack sets; the IPv6
    # alias-set list contains a healthy ISP presence (router interfaces).
    dual_roles = result.role_counts("dual")
    assert dual_roles.get(AsRole.CLOUD, 0) >= 3
    assert result.top3_dual_stack_share >= 0.3
    assert result.ipv6_entries and result.dual_stack_entries
