"""Ablation benchmarks for the design choices called out in DESIGN.md.

These are not paper tables; they quantify why the identifiers are built the
way they are:

* the SSH identifier with and without the algorithm-capability signature
  (shared factory keys are over-merged without it),
* the BGP identifier with and without hold time / capabilities, and
* the effect of single-vantage-point rate limiting on coverage
  (active vs Censys-like collection).
"""

from repro.analysis.tables import render_table
from repro.core.alias_resolution import AliasResolver
from repro.core.identifiers import IdentifierOptions
from repro.core.validation import ground_truth_accuracy
from repro.net.addresses import AddressFamily
from repro.simnet.device import ServiceType


def bench_ssh_capability_ablation(benchmark, scenario):
    """SSH identifier: host key only vs host key + capabilities + banner."""
    observations = list(scenario.union_ipv4)
    truth = scenario.network.ground_truth_alias_sets(AddressFamily.IPV4)

    def run():
        results = {}
        for label, options in (
            ("key only", IdentifierOptions(ssh_include_banner=False, ssh_include_capabilities=False)),
            ("key + capabilities", IdentifierOptions(ssh_include_banner=False, ssh_include_capabilities=True)),
            ("full identifier", IdentifierOptions()),
        ):
            collection = AliasResolver(options).group(
                observations, protocol=ServiceType.SSH, family=AddressFamily.IPV4, name=label
            )
            metrics = ground_truth_accuracy(collection, truth)
            results[label] = (len(collection.non_singleton()), metrics["pair_precision"])
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["SSH identifier", "non-singleton sets", "alias-pair precision"],
        [[label, sets, f"{precision:.3f}"] for label, (sets, precision) in results.items()],
        title="Ablation: SSH identifier construction",
    ))
    # Adding the capability signature splits hosts that share factory-default
    # keys, so the fraction of inferred alias pairs that are true aliases
    # must improve (or at worst stay equal); it must never merge more.
    assert results["key + capabilities"][1] >= results["key only"][1]
    assert results["full identifier"][1] >= results["key only"][1]
    assert results["full identifier"][0] >= results["key only"][0]


def bench_bgp_field_ablation(benchmark, scenario):
    """BGP identifier: full OPEN fields vs BGP Identifier + ASN only."""
    observations = list(scenario.union_ipv4)
    truth = scenario.network.ground_truth_alias_sets(AddressFamily.IPV4)

    def run():
        results = {}
        for label, options in (
            ("bgp id + asn only", IdentifierOptions(bgp_include_capabilities=False, bgp_include_hold_time=False)),
            ("full OPEN fields", IdentifierOptions()),
        ):
            collection = AliasResolver(options).group(
                observations, protocol=ServiceType.BGP, family=AddressFamily.IPV4, name=label
            )
            metrics = ground_truth_accuracy(collection, truth)
            results[label] = (len(collection.non_singleton()), metrics["pair_precision"])
        return results

    results = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["BGP identifier", "non-singleton sets", "alias-pair precision"],
        [[label, sets, f"{precision:.3f}"] for label, (sets, precision) in results.items()],
        title="Ablation: BGP identifier construction",
    ))
    assert results["full OPEN fields"][1] >= results["bgp id + asn only"][1]


def bench_vantage_point_ablation(benchmark, scenario):
    """Coverage of a single rate-limited vantage point vs a distributed one."""
    def run():
        active_ssh = len(scenario.active_ipv4.addresses(ServiceType.SSH, AddressFamily.IPV4))
        censys_ssh = len(scenario.censys_ipv4_standard.addresses(ServiceType.SSH, AddressFamily.IPV4))
        union_ssh = len(scenario.union_ipv4.addresses(ServiceType.SSH, AddressFamily.IPV4))
        return active_ssh, censys_ssh, union_ssh

    active_ssh, censys_ssh, union_ssh = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(render_table(
        ["Collection", "SSH IPv4 addresses"],
        [["active (single VP)", active_ssh], ["censys (distributed)", censys_ssh], ["union", union_ssh]],
        title="Ablation: vantage point strategy",
    ))
    assert censys_ssh >= active_ssh
    assert union_ssh >= censys_ssh
