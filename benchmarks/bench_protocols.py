"""Microbenchmarks of the protocol substrates.

These measure the per-message cost of the wire-format code that every scan
record passes through (SSH KEXINIT, BGP OPEN, SNMPv3 discovery), which is
what bounds the throughput of the application-layer grabber.
"""

from repro.net.endpoint import LoopbackConnection
from repro.protocols.bgp.capabilities import Capability
from repro.protocols.bgp.messages import BgpOpen, parse_messages
from repro.protocols.snmp.engine_id import EngineId
from repro.protocols.snmp.v3 import SnmpV3Message, build_discovery_report
from repro.protocols.ssh.client import SshScanClient
from repro.protocols.ssh.kex import KexInit
from repro.protocols.ssh.server import SshServerBehavior, SshServerConfig


def bench_ssh_kexinit_roundtrip(benchmark):
    message = KexInit(cookie=b"\x42" * 16)

    def run():
        return KexInit.parse(message.build()).capability_signature()

    signature = benchmark(run)
    assert len(signature) == 64


def bench_ssh_full_handshake(benchmark):
    config = SshServerConfig.generate("bench-host")
    client = SshScanClient()

    def run():
        return client.scan("192.0.2.1", LoopbackConnection(SshServerBehavior(config)))

    record = benchmark(run)
    assert record.has_identifier


def bench_bgp_open_roundtrip(benchmark):
    message = BgpOpen(
        my_as=23456,
        hold_time=90,
        bgp_identifier="198.51.100.7",
        capabilities=(Capability.route_refresh_cisco(), Capability.route_refresh(), Capability.four_octet_as(396982)),
    )

    def run():
        return parse_messages(message.build())

    parsed = benchmark(run)
    assert parsed[0].effective_asn == 396982


def bench_snmp_discovery_roundtrip(benchmark):
    engine_id = EngineId.generate("bench-agent")
    report = build_discovery_report(msg_id=1, engine_id=engine_id, engine_boots=3, engine_time=12345)

    def run():
        return SnmpV3Message.parse(report)

    parsed = benchmark(run)
    assert parsed.security_parameters.engine_id == engine_id.encode()
