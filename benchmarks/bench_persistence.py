"""Benchmark of the persistence subsystem: warm starts and campaign resume.

Three claims are measured and asserted:

* **Warm vs cold session start** — loading a saved session and reading its
  report caches must produce signatures identical to building the session
  from scratch, and (once the cold path is expensive enough to measure)
  must be faster: a warm start parses JSON instead of simulating the
  Internet and re-resolving every composition.
* **Rendered-experiment parity** — a session saved and re-loaded renders
  every registered experiment byte-identically to the live session
  (the acceptance bar of the persistence work, checked at whatever
  ``REPRO_BENCH_SCALE`` is in effect; scale 1.0 seed 42 is the paper
  configuration).
* **Checkpoint + resume parity** — a campaign stopped after snapshot k and
  resumed in a fresh engine matches the uninterrupted campaign
  snapshot-for-snapshot (report signatures and stability metrics), and the
  resumed run only pays for the snapshots it actually scans.

Run with the usual harness, e.g.::

    REPRO_BENCH_SCALE=1.0 PYTHONPATH=src python -m pytest benchmarks \
        -o python_files='bench_*.py' -o python_functions='bench_*' -q
"""

import os
import time

import pytest

from repro.api.config import ScenarioConfig
from repro.api.session import ReproSession
from repro.core.engine import report_signature
from repro.net.addresses import AddressFamily
from repro.persist.campaign import (
    CampaignCheckpointer,
    load_checkpoint,
    resume_campaign,
)

#: Cold-start time (seconds) below which the warm-vs-cold assertion stays
#: dormant: under CI smoke scales the cold path is too fast for a
#: meaningful race.
_ASSERT_THRESHOLD_SECONDS = 0.5

#: Required speedup of a warm start over a cold start once armed.
_REQUIRED_SPEEDUP = 2.0

#: Report compositions the session benchmarks warm up.
_COMPOSITIONS = ("active", "censys", "union")


def _bench_config():
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "42"))
    return ScenarioConfig(scale=scale, seed=seed)


@pytest.fixture(scope="module")
def saved_session(tmp_path_factory):
    """A fully warmed session, saved once for every benchmark here."""
    session = ReproSession(_bench_config())
    for name in _COMPOSITIONS:
        session.report(name)
    directory = tmp_path_factory.mktemp("persistence") / "session"
    session.save(directory)
    return session, directory


def bench_warm_vs_cold_start(benchmark, saved_session, bench_json):
    """Load-and-read vs simulate-and-resolve, with signature parity."""
    live, directory = saved_session
    reference = {
        name: report_signature(live.report(name)) for name in _COMPOSITIONS
    }

    def cold_start():
        session = ReproSession(_bench_config())
        return {name: session.report(name) for name in _COMPOSITIONS}

    def warm_start():
        session = ReproSession.load(directory)
        return {name: session.report(name) for name in _COMPOSITIONS}

    start = time.perf_counter()
    cold_reports = cold_start()
    cold_time = time.perf_counter() - start
    start = time.perf_counter()
    warm_reports = warm_start()
    warm_time = time.perf_counter() - start

    for name in _COMPOSITIONS:
        assert report_signature(cold_reports[name]) == reference[name]
        assert report_signature(warm_reports[name]) == reference[name]

    speedup = cold_time / warm_time if warm_time else float("inf")
    print()
    print(
        f"warm start {1000 * warm_time:.0f} ms vs cold start "
        f"{1000 * cold_time:.0f} ms over {len(_COMPOSITIONS)} compositions "
        f"({speedup:.1f}x)"
    )
    bench_json.record(
        "persistence",
        "warm_vs_cold_start",
        compositions=len(_COMPOSITIONS),
        warm_seconds=warm_time,
        cold_seconds=cold_time,
        speedup=speedup,
        asserted=cold_time >= _ASSERT_THRESHOLD_SECONDS,
    )
    if cold_time >= _ASSERT_THRESHOLD_SECONDS:
        assert speedup >= _REQUIRED_SPEEDUP, (
            f"warm start only {speedup:.2f}x faster than cold "
            f"(required {_REQUIRED_SPEEDUP}x)"
        )

    benchmark.pedantic(warm_start, rounds=1, iterations=1)


def bench_rendered_experiment_parity(benchmark, saved_session):
    """A re-loaded session renders every experiment byte-identically."""
    live, directory = saved_session
    reference = live.run_experiments()

    def replay():
        return ReproSession.load(directory).run_experiments()

    restored = benchmark.pedantic(replay, rounds=1, iterations=1)
    assert restored == reference
    print()
    print(f"{len(reference)} experiments render byte-identically after reload")


def bench_checkpoint_resume(benchmark, tmp_path_factory, bench_json):
    """Stop after snapshot k, resume to the end, match the straight run."""
    config = _bench_config()
    snapshots, stop_after = 4, 2

    def campaign(horizon):
        return ReproSession(config).longitudinal(snapshots=horizon, churn_fraction=0.02)

    start = time.perf_counter()
    uninterrupted = campaign(snapshots).run()
    full_time = time.perf_counter() - start

    # The interrupted run: a shorter horizon, checkpointing as it goes —
    # resume then *extends* it back to the full horizon.
    directory = tmp_path_factory.mktemp("persistence") / "checkpoint"
    campaign(stop_after).run(checkpointer=CampaignCheckpointer(directory, config))

    def resume():
        checkpoint = load_checkpoint(directory)
        resumed_campaign, engine = resume_campaign(checkpoint, snapshots=snapshots)
        return checkpoint, resumed_campaign.run(
            start=checkpoint.completed,
            previous=checkpoint.last_observations,
            engine=engine,
        )

    start = time.perf_counter()
    checkpoint, resumed = resume()
    resume_time = time.perf_counter() - start

    assert checkpoint.completed == stop_after
    assert len(resumed.snapshots) == snapshots - stop_after
    for resolved, reference in zip(
        resumed.snapshots,
        uninterrupted.snapshots[stop_after:],
        strict=True,
    ):
        assert report_signature(resolved.report) == report_signature(reference.report)
        assert resolved.stability() == reference.stability()
        assert resolved.stability(AddressFamily.IPV6) == reference.stability(
            AddressFamily.IPV6
        )
    stored = checkpoint.stability_rows(AddressFamily.IPV4)
    assert stored == [s.stability() for s in uninterrupted.snapshots[:stop_after]]

    print()
    print(
        f"resume of {snapshots - stop_after}/{snapshots} snapshots "
        f"{1000 * resume_time:.0f} ms vs full campaign {1000 * full_time:.0f} ms "
        "(snapshot-for-snapshot parity held)"
    )
    bench_json.record(
        "persistence",
        "checkpoint_resume",
        snapshots=snapshots,
        resumed_snapshots=snapshots - stop_after,
        resume_seconds=resume_time,
        full_campaign_seconds=full_time,
    )

    benchmark.pedantic(resume, rounds=1, iterations=1)
