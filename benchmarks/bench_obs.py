"""Benchmark of the observability layer's overhead.

Runs the end-to-end resolution pipeline over the union dataset twice —
once with the obs layer dormant (the default) and once with metrics and
span tracing fully enabled — and races the wall clocks.  The design
contract of :mod:`repro.obs` is a no-op fast path cheap enough to leave
compiled in everywhere, and an enabled path that only *records*: the
parity assertion (byte-identical report signatures) always runs, and the
<5% overhead assertion arms once the dormant baseline is slow enough
(≥0.5 s) that fixed costs stop dominating, following the repo-wide
convention.

Run with the usual harness, e.g.::

    REPRO_BENCH_SCALE=1.0 PYTHONPATH=src python -m pytest benchmarks \
        -o python_files='bench_*.py' -o python_functions='bench_*' -q

Add ``--bench-json DIR`` to record the measurements into
``BENCH_obs.json``.
"""

import time

from repro import obs
from repro.core.engine import report_signature
from repro.core.pipeline import run_alias_resolution

#: Minimum dormant-path resolve time before the overhead assertion arms;
#: below it, per-call constant factors dominate and the ratio is noise.
_OVERHEAD_FLOOR_SECONDS = 0.5

#: Maximum tolerated slowdown of the instrumented run once the race arms.
_MAX_OVERHEAD = 0.05


def _timed(callable_):
    start = time.perf_counter()
    result = callable_()
    return time.perf_counter() - start, result


def bench_obs_overhead(benchmark, scenario, bench_json):
    """Instrumented vs dormant end-to-end resolve: parity always, <5% armed."""
    observations = list(scenario.observations_for("union"))
    rounds = 3

    assert not obs.is_enabled()
    dormant_times = []
    dormant_report = None
    for _ in range(rounds):
        seconds, dormant_report = _timed(
            lambda: run_alias_resolution(observations, name="union")
        )
        dormant_times.append(seconds)

    enabled_times = []
    instrumented_report = None
    with obs.observed() as registry:
        for _ in range(rounds):
            seconds, instrumented_report = _timed(
                lambda: run_alias_resolution(observations, name="union")
            )
            enabled_times.append(seconds)
    assert not obs.is_enabled()

    # Parity is unconditional: instrumentation records, it never perturbs.
    assert report_signature(instrumented_report) == report_signature(dormant_report)
    # The enabled run must actually have recorded something.
    assert registry.counter_total("index.observations.observed") == rounds * len(
        observations
    )

    dormant = min(dormant_times)
    enabled = min(enabled_times)
    overhead = (enabled - dormant) / dormant if dormant else 0.0
    armed = dormant >= _OVERHEAD_FLOOR_SECONDS

    print()
    print(
        f"dormant {1000 * dormant:.1f} ms vs instrumented {1000 * enabled:.1f} ms "
        f"({100 * overhead:+.1f}% overhead, {'armed' if armed else 'dormant assertion'}) "
        f"over {len(observations)} observations"
    )
    bench_json.record(
        "obs",
        "resolve_overhead",
        observations=len(observations),
        dormant_seconds=dormant,
        instrumented_seconds=enabled,
        overhead_fraction=overhead,
        asserted=armed,
    )
    if armed:
        assert overhead < _MAX_OVERHEAD, (
            f"instrumentation overhead {100 * overhead:.1f}% exceeds "
            f"{100 * _MAX_OVERHEAD:.0f}% over a {dormant:.2f}s baseline"
        )

    benchmark.pedantic(
        lambda: run_alias_resolution(observations, name="union"), rounds=1, iterations=1
    )


def bench_obs_disabled_helpers(benchmark, scenario, bench_json):
    """The no-op fast path in isolation: a dormant helper call is ~free."""
    iterations = 100_000

    assert not obs.is_enabled()
    start = time.perf_counter()
    for _ in range(iterations):
        obs.add("bench.counter", 1, outcome="hit")
    dormant_add = time.perf_counter() - start

    start = time.perf_counter()
    for _ in range(iterations):
        with obs.span("bench.span"):
            pass
    dormant_span = time.perf_counter() - start

    with obs.observed() as registry:
        start = time.perf_counter()
        for _ in range(iterations):
            obs.add("bench.counter", 1, outcome="hit")
        enabled_add = time.perf_counter() - start
    assert registry.counter_value("bench.counter", outcome="hit") == iterations

    print()
    print(
        f"{iterations} dormant adds {1000 * dormant_add:.1f} ms / spans "
        f"{1000 * dormant_span:.1f} ms; enabled adds {1000 * enabled_add:.1f} ms"
    )
    bench_json.record(
        "obs",
        "helper_fast_path",
        iterations=iterations,
        dormant_add_seconds=dormant_add,
        dormant_span_seconds=dormant_span,
        enabled_add_seconds=enabled_add,
    )
    benchmark.pedantic(lambda: obs.add("bench.counter", 1), rounds=1, iterations=1)
