"""Benchmark of the single-pass resolution pipeline.

Covers the end-to-end ``run_alias_resolution`` path for all three sources
(active, censys, union), the :class:`ObservationIndex` build step in
isolation, and a head-to-head against the seed's nine-pass structure (six
per-(protocol, family) groupings plus three dual-stack passes, re-extracting
identifiers along the way).  The extraction-count assertions prove the
engine extracts each observation's identifier exactly once, where the
nine-pass layout extracts each twice.

Run with the usual harness, e.g.::

    REPRO_BENCH_SCALE=1.0 PYTHONPATH=src python -m pytest benchmarks \
        -o python_files='bench_*.py' -o python_functions='bench_*' -q
"""

import time

from repro.core.alias_resolution import AliasResolver
from repro.core.dual_stack import infer_dual_stack, union_dual_stack
from repro.core.engine import PROTOCOLS, ObservationIndex, ResolutionEngine
from repro.core.identifiers import count_extractions
from repro.core.pipeline import run_alias_resolution
from repro.net.addresses import AddressFamily


def _observations(scenario, source):
    return list(scenario.observations_for(source))


def _nine_pass_reference(observations, name="dataset"):
    """The seed pipeline's pass structure, for wall-clock comparison."""
    observation_list = list(observations)
    resolver = AliasResolver()
    ipv4 = {}
    ipv6 = {}
    dual = {}
    for protocol in PROTOCOLS:
        ipv4[protocol] = resolver.group(
            observation_list, protocol=protocol, family=AddressFamily.IPV4, name=f"{name}:{protocol.value}:ipv4"
        )
        ipv6[protocol] = resolver.group(
            observation_list, protocol=protocol, family=AddressFamily.IPV6, name=f"{name}:{protocol.value}:ipv6"
        )
        dual[protocol] = infer_dual_stack(
            observation_list, protocol=protocol, name=f"{name}:{protocol.value}:dual"
        )
    AliasResolver.union(ipv4.values(), name=f"{name}:union:ipv4")
    AliasResolver.union(ipv6.values(), name=f"{name}:union:ipv6")
    union_dual_stack(dual.values(), name=f"{name}:union:dual")


def _bench_source(benchmark, scenario, source):
    observations = _observations(scenario, source)
    # Counted pass first, un-hooked timed pass second, so the recorded timing
    # does not pay for the instrumentation callback.
    with count_extractions() as counter:
        run_alias_resolution(observations, name=source)
    # The single-pass engine extracts each observation's identifier exactly once.
    assert counter.count == len(observations)
    report = benchmark.pedantic(
        lambda: run_alias_resolution(observations, name=source), rounds=1, iterations=1
    )
    assert len(report.ipv4_union) > 0
    return report


def bench_pipeline_active(benchmark, scenario):
    report = _bench_source(benchmark, scenario, "active")
    assert len(report.dual_stack_union) > 0


def bench_pipeline_censys(benchmark, scenario):
    # The Censys snapshot is IPv4-only, so no dual-stack sets are expected.
    report = _bench_source(benchmark, scenario, "censys")
    assert len(report.ipv6_union) == 0


def bench_pipeline_union(benchmark, scenario):
    report = _bench_source(benchmark, scenario, "union")
    assert len(report.dual_stack_union) > 0


def bench_index_build(benchmark, scenario):
    """The index pass in isolation — the part that touches raw observations."""
    observations = _observations(scenario, "union")
    with count_extractions() as counter:
        ObservationIndex.build(observations)
    assert counter.count == len(observations)
    index = benchmark.pedantic(
        lambda: ObservationIndex.build(observations), rounds=1, iterations=1
    )
    assert index.observed == len(observations)
    assert 0 < index.indexed <= index.observed


def bench_single_pass_vs_nine_pass(benchmark, scenario):
    """Engine vs the seed's nine-pass structure on the union dataset."""
    observations = _observations(scenario, "union")
    engine = ResolutionEngine()

    with count_extractions() as single_counter:
        engine.resolve(observations, name="union")
    with count_extractions() as nine_counter:
        _nine_pass_reference(observations, name="union")
    assert single_counter.count == len(observations)
    # Nine passes extract twice per observation: once in its (protocol,
    # family) grouping and once in its protocol's dual-stack pass.
    assert nine_counter.count == 2 * len(observations)

    rounds = 3
    single_time = min(
        _timed(lambda: engine.resolve(observations, name="union")) for _ in range(rounds)
    )
    nine_time = min(
        _timed(lambda: _nine_pass_reference(observations, name="union")) for _ in range(rounds)
    )
    print()
    print(
        f"single-pass {single_time * 1000:.1f} ms vs nine-pass {nine_time * 1000:.1f} ms "
        f"({nine_time / single_time:.2f}x) over {len(observations)} observations"
    )
    # Below a few thousand observations constant factors dominate and the
    # race is noise; at REPRO_BENCH_SCALE=1.0 (~17k observations) the
    # single-pass engine must win on wall clock, not just extraction count.
    if len(observations) >= 5000:
        assert single_time < nine_time

    benchmark.pedantic(lambda: engine.resolve(observations, name="union"), rounds=1, iterations=1)


def _timed(callable_):
    start = time.perf_counter()
    callable_()
    return time.perf_counter() - start
