"""Benchmark of the single-pass resolution pipeline.

Covers the end-to-end ``run_alias_resolution`` path for all three sources
(active, censys, union), the :class:`ObservationIndex` build step in
isolation, a head-to-head against the seed's nine-pass structure (six
per-(protocol, family) groupings plus three dual-stack passes, re-extracting
identifiers along the way), and the headline columnar race: the interned
columnar core — serial and shared-memory parallel — against the PR-5
dict-backed core (:class:`~repro.core.dictcore.DictObservationIndex`).
The extraction-count assertions prove the engine extracts each
observation's identifier exactly once, where the nine-pass layout extracts
each twice.

Run with the usual harness, e.g.::

    REPRO_BENCH_SCALE=1.0 PYTHONPATH=src python -m pytest benchmarks \
        -o python_files='bench_*.py' -o python_functions='bench_*' -q

Add ``--bench-json DIR`` to record the measurements into
``BENCH_pipeline.json``.
"""

import os
import time

from repro.api.parallel import build_index_parallel, last_build_stats
from repro.core.alias_resolution import AliasResolver
from repro.core.dictcore import DictObservationIndex
from repro.core.dual_stack import infer_dual_stack, union_dual_stack
from repro.core.engine import (
    PROTOCOLS,
    ObservationIndex,
    ResolutionEngine,
    report_signature,
)
from repro.core.identifiers import count_extractions
from repro.core.pipeline import run_alias_resolution
from repro.net.addresses import AddressFamily

#: Minimum *dict-core* build time before the columnar speedup assertion
#: arms, following the repo-wide convention: below it, fixed process-pool
#: overhead dominates the parallel leg and the race measures startup
#: rather than the index pass.  Raise REPRO_BENCH_SCALE (≥ 2.0) on a
#: multi-core machine to arm it.
_SPEEDUP_FLOOR_SECONDS = 0.5

#: Required speedup of the columnar build (best of serial and parallel)
#: over the PR-5 dict core once the race arms.
_REQUIRED_SPEEDUP = 5.0


def _observations(scenario, source):
    return list(scenario.observations_for(source))


def _nine_pass_reference(observations, name="dataset"):
    """The seed pipeline's pass structure, for wall-clock comparison."""
    observation_list = list(observations)
    resolver = AliasResolver()
    ipv4 = {}
    ipv6 = {}
    dual = {}
    for protocol in PROTOCOLS:
        ipv4[protocol] = resolver.group(
            observation_list, protocol=protocol, family=AddressFamily.IPV4, name=f"{name}:{protocol.value}:ipv4"
        )
        ipv6[protocol] = resolver.group(
            observation_list, protocol=protocol, family=AddressFamily.IPV6, name=f"{name}:{protocol.value}:ipv6"
        )
        dual[protocol] = infer_dual_stack(
            observation_list, protocol=protocol, name=f"{name}:{protocol.value}:dual"
        )
    AliasResolver.union(ipv4.values(), name=f"{name}:union:ipv4")
    AliasResolver.union(ipv6.values(), name=f"{name}:union:ipv6")
    union_dual_stack(dual.values(), name=f"{name}:union:dual")


def _bench_source(benchmark, scenario, bench_json, source):
    observations = _observations(scenario, source)
    # Counted pass first, un-hooked timed pass second, so the recorded timing
    # does not pay for the instrumentation callback.
    with count_extractions() as counter:
        run_alias_resolution(observations, name=source)
    # The single-pass engine extracts each observation's identifier exactly once.
    assert counter.count == len(observations)
    start = time.perf_counter()
    report = benchmark.pedantic(
        lambda: run_alias_resolution(observations, name=source), rounds=1, iterations=1
    )
    bench_json.record(
        "pipeline",
        f"resolve_{source}",
        seconds=time.perf_counter() - start,
        observations=len(observations),
    )
    assert len(report.ipv4_union) > 0
    return report


def bench_pipeline_active(benchmark, scenario, bench_json):
    report = _bench_source(benchmark, scenario, bench_json, "active")
    assert len(report.dual_stack_union) > 0


def bench_pipeline_censys(benchmark, scenario, bench_json):
    # The Censys snapshot is IPv4-only, so no dual-stack sets are expected.
    report = _bench_source(benchmark, scenario, bench_json, "censys")
    assert len(report.ipv6_union) == 0


def bench_pipeline_union(benchmark, scenario, bench_json):
    report = _bench_source(benchmark, scenario, bench_json, "union")
    assert len(report.dual_stack_union) > 0


def bench_index_build(benchmark, scenario, bench_json):
    """The index pass in isolation — the part that touches raw observations."""
    observations = _observations(scenario, "union")
    with count_extractions() as counter:
        ObservationIndex.build(observations)
    assert counter.count == len(observations)
    start = time.perf_counter()
    index = benchmark.pedantic(
        lambda: ObservationIndex.build(observations), rounds=1, iterations=1
    )
    bench_json.record(
        "pipeline",
        "index_build_columnar_serial",
        seconds=time.perf_counter() - start,
        observations=len(observations),
        interned_addresses=index.address_symbols,
        interned_identifiers=index.identifier_symbols,
    )
    assert index.observed == len(observations)
    assert 0 < index.indexed <= index.observed


def bench_columnar_vs_dict_core(benchmark, scenario, bench_json):
    """The headline race: columnar core (serial + parallel) vs the PR-5 dict core.

    Derived reports must be byte-identical (by :func:`report_signature`)
    whichever core built the index; the ≥5x wall-clock assertion arms under
    the repo convention — ≥2 CPUs and a dict-core serial build slow enough
    (≥0.5 s) that fixed pool overhead is amortised.
    """
    observations = _observations(scenario, "union")
    cpus = os.cpu_count() or 1
    workers = min(4, max(2, cpus))
    rounds = 3

    dict_time = min(
        _timed(lambda: DictObservationIndex.build(observations)) for _ in range(rounds)
    )
    columnar_serial_time = min(
        _timed(lambda: ObservationIndex.build(observations)) for _ in range(rounds)
    )
    columnar_parallel_time = min(
        _timed(lambda: build_index_parallel(observations, workers=workers))
        for _ in range(rounds)
    )
    transport = last_build_stats().transport
    best_columnar = min(columnar_serial_time, columnar_parallel_time)
    speedup = dict_time / best_columnar if best_columnar else float("inf")

    # Byte-identical derived reports, whichever core built the index.
    engine = ResolutionEngine()
    dict_report = report_signature(
        engine.report(DictObservationIndex.build(observations), name="union")
    )
    assert (
        report_signature(engine.report(ObservationIndex.build(observations), name="union"))
        == dict_report
    )
    assert (
        report_signature(
            engine.report(build_index_parallel(observations, workers=workers), name="union")
        )
        == dict_report
    )

    print()
    print(
        f"dict core {1000 * dict_time:.1f} ms vs columnar serial "
        f"{1000 * columnar_serial_time:.1f} ms / parallel({workers}, {transport}) "
        f"{1000 * columnar_parallel_time:.1f} ms — {speedup:.2f}x over "
        f"{len(observations)} observations on {cpus} CPU(s)"
    )
    bench_json.record(
        "pipeline",
        "columnar_vs_dict_core",
        observations=len(observations),
        cpus=cpus,
        workers=workers,
        transport=transport,
        dict_seconds=dict_time,
        columnar_serial_seconds=columnar_serial_time,
        columnar_parallel_seconds=columnar_parallel_time,
        speedup=speedup,
        asserted=cpus >= 2 and dict_time >= _SPEEDUP_FLOOR_SECONDS,
    )
    if cpus >= 2 and dict_time >= _SPEEDUP_FLOOR_SECONDS:
        assert speedup >= _REQUIRED_SPEEDUP, (
            f"columnar index build only {speedup:.2f}x faster than the dict core "
            f"(required {_REQUIRED_SPEEDUP}x)"
        )

    benchmark.pedantic(
        lambda: ObservationIndex.build(observations), rounds=1, iterations=1
    )


def bench_single_pass_vs_nine_pass(benchmark, scenario, bench_json):
    """Engine vs the seed's nine-pass structure on the union dataset."""
    observations = _observations(scenario, "union")
    engine = ResolutionEngine()

    with count_extractions() as single_counter:
        engine.resolve(observations, name="union")
    with count_extractions() as nine_counter:
        _nine_pass_reference(observations, name="union")
    assert single_counter.count == len(observations)
    # Nine passes extract twice per observation: once in its (protocol,
    # family) grouping and once in its protocol's dual-stack pass.
    assert nine_counter.count == 2 * len(observations)

    rounds = 3
    single_time = min(
        _timed(lambda: engine.resolve(observations, name="union")) for _ in range(rounds)
    )
    nine_time = min(
        _timed(lambda: _nine_pass_reference(observations, name="union")) for _ in range(rounds)
    )
    print()
    print(
        f"single-pass {single_time * 1000:.1f} ms vs nine-pass {nine_time * 1000:.1f} ms "
        f"({nine_time / single_time:.2f}x) over {len(observations)} observations"
    )
    bench_json.record(
        "pipeline",
        "single_pass_vs_nine_pass",
        observations=len(observations),
        single_pass_seconds=single_time,
        nine_pass_seconds=nine_time,
        speedup=nine_time / single_time if single_time else float("inf"),
    )
    # Below a few thousand observations constant factors dominate and the
    # race is noise; at REPRO_BENCH_SCALE=1.0 (~17k observations) the
    # single-pass engine must win on wall clock, not just extraction count.
    if len(observations) >= 5000:
        assert single_time < nine_time

    benchmark.pedantic(lambda: engine.resolve(observations, name="union"), rounds=1, iterations=1)


def _timed(callable_):
    start = time.perf_counter()
    callable_()
    return time.perf_counter() - start
