"""Benchmark / regeneration of Table 5 — top 10 ASes for IPv4 alias sets."""

from repro.experiments import table5
from repro.simnet.asn import AsRole


def bench_table5(benchmark, scenario):
    result = benchmark.pedantic(lambda: table5.build(scenario), rounds=1, iterations=1)
    print()
    print(table5.render(result))

    # Paper shape: cloud providers dominate the SSH and union top-10 lists,
    # ISPs dominate BGP and SNMPv3.
    assert result.cloud_share("SSH") >= 0.6
    assert result.cloud_share("Union") >= 0.5
    assert result.role_counts("BGP").get(AsRole.ISP, 0) >= 6
    assert result.role_counts("SNMPv3").get(AsRole.ISP, 0) >= 6
