"""Benchmark of the registry-driven validation subsystem.

Two claims are measured and asserted (always, at whatever
``REPRO_BENCH_SCALE`` is in effect):

* **Table 2 golden parity** — Table 2 rendered through the validator
  registry (``session.validate`` over ``sample(midar(...))``) is
  byte-identical to the pre-registry build, replicated here inline with a
  direct ``MidarProber`` run: same sampling, same schedule, same probing
  order.  At scale 1.0 seed 42 this is the paper configuration.
* **Shared-bank probe reduction with verdict parity** — a composed
  midar+ally validation over one sample, sharing one
  :class:`~repro.validation.bank.IpidSampleBank`, issues strictly fewer
  network probes than the two probers run independently (each on its own
  freshly simulated Internet), with identical per-set verdicts for both
  techniques.  The Ally pass itself is answered roughly half from the
  bank.  The comparison scenario probes from a distributed vantage with
  ``loss_rate=0`` so the saving is isolated from per-vantage IDS budgets
  and stochastic per-probe loss, which would otherwise make the
  *independent* runs degrade each other (rate limiting) or flip borderline
  responses at probe times only one schedule visits.

Run with the usual harness, e.g.::

    REPRO_BENCH_SCALE=1.0 PYTHONPATH=src python -m pytest \
        benchmarks/bench_validation.py \
        -o python_files='bench_*.py' -o python_functions='bench_*' -q
"""

import os
import random
import time

import pytest

from repro.api.config import ScenarioConfig
from repro.api.experiments import get_experiment
from repro.api.session import ReproSession
from repro.baselines.midar import MidarProber
from repro.core.validation import cross_validate
from repro.experiments.table2 import Table2Result, ValidationRow, render
from repro.simnet.device import ServiceType
from repro.simnet.network import VantagePoint
from repro.validation.bank import IpidSampleBank
from repro.validation.spec import ally, midar, sample
from repro.validation.techniques import AllyPipeline

#: The vantage of the sharing comparison: distributed, so per-(vantage, AS,
#: window) IDS budgets do not punish whichever run probes more.
_VP = VantagePoint(name="midar-vp", address="192.0.2.251", distributed=True)

#: Sample size / seed of the comparison (the Table 2 defaults).
_SIZE, _SEED = 150, 7


def _bench_config(**overrides):
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "42"))
    return ScenarioConfig(scale=scale, seed=seed, **overrides)


def _count_probes(network):
    """Count ``sample_ipid`` calls at the network boundary."""
    counter = {"probes": 0}
    original = network.sample_ipid

    def counting(address, vantage, now=0.0):
        counter["probes"] += 1
        return original(address, vantage, now=now)

    network.sample_ipid = counting
    return counter


def _legacy_table2(session, midar_sample_size=150, midar_seed=7):
    """The pre-registry Table 2 build: hand-wired sampling and probing."""
    report = session.report("active")
    ssh = report.ipv4[ServiceType.SSH]
    bgp = report.ipv4[ServiceType.BGP]
    snmp = report.ipv4[ServiceType.SNMPV3]
    rows = []
    for pair, left, right in (
        ("SSH-BGP", ssh, bgp),
        ("SSH-SNMPv3", ssh, snmp),
        ("BGP-SNMPv3", bgp, snmp),
    ):
        result = cross_validate(left, right)
        rows.append(
            ValidationRow(pair=pair, sample_size=result.sample_size, agree=result.agree, disagree=result.disagree)
        )
    rng = random.Random(midar_seed)
    candidates = [
        alias_set.addresses
        for alias_set in ssh.non_singleton()
        if len(alias_set.addresses) <= 10
    ]
    chosen = rng.sample(candidates, min(midar_sample_size, len(candidates)))
    prober = MidarProber(session.network, VantagePoint(name="midar-vp", address="192.0.2.251"))
    ipv6_times = [observation.timestamp for observation in session.dataset("active-ipv6")]
    midar_start = max(ipv6_times) + 3600.0 if ipv6_times else 0.0
    verdicts = prober.verify_sets(chosen, start_time=midar_start)
    testable = [verdict for verdict in verdicts if verdict.testable]
    agree = sum(1 for verdict in testable if verdict.agrees)
    rows.append(
        ValidationRow(
            pair="SSH-MIDAR",
            sample_size=len(testable),
            agree=agree,
            disagree=len(testable) - agree,
        )
    )
    return Table2Result(rows=rows, midar_sampled_sets=len(chosen), midar_testable_sets=len(testable))


def bench_table2_registry_parity(benchmark, bench_json):
    """Table 2 via the validator registry == the hand-wired legacy build."""
    config = _bench_config()
    legacy = render(_legacy_table2(ReproSession(config)))

    def registry_build():
        return get_experiment("table2").run(ReproSession(config))

    start = time.perf_counter()
    rendered = registry_build()
    elapsed = time.perf_counter() - start
    assert rendered == legacy, "registry-driven Table 2 diverged from the legacy build"
    print()
    print(
        f"table2 via validator registry byte-identical to legacy build "
        f"(scale {config.scale}, seed {config.seed}, {1000 * elapsed:.0f} ms)"
    )
    bench_json.record(
        "validation",
        "table2_registry_parity",
        seconds=elapsed,
    )
    benchmark.pedantic(registry_build, rounds=1, iterations=1)


def _comparison_specs():
    leaf_params = dict(
        source="active",
        protocol="ssh",
        family="ipv4",
        start_after="active-ipv6",
        distributed=True,
    )
    return (
        sample(midar(**leaf_params), size=_SIZE, seed=_SEED, max_size=10),
        sample(ally(**leaf_params), size=_SIZE, seed=_SEED, max_size=10),
    )


def _sample_and_start(session):
    """The shared candidate sample and probing start of the comparison."""
    report = session.report("active")
    candidates = [
        alias_set.addresses
        for alias_set in report.ipv4[ServiceType.SSH].non_singleton()
        if len(alias_set.addresses) <= 10
    ]
    chosen = random.Random(_SEED).sample(candidates, min(_SIZE, len(candidates)))
    start = max(o.timestamp for o in session.dataset("active-ipv6")) + 3600.0
    return chosen, start


def bench_shared_bank_probe_reduction(benchmark, bench_json):
    """Composed midar+ally probes strictly less than independent probers,
    with identical verdicts."""
    config = _bench_config(loss_rate=0.0)
    midar_spec, ally_spec = _comparison_specs()

    # Independent MIDAR: its own freshly simulated Internet.
    midar_session = ReproSession(config)
    chosen, start = _sample_and_start(midar_session)
    midar_counter = _count_probes(midar_session.network)
    midar_verdicts = MidarProber(midar_session.network, _VP).verify_sets(
        chosen, start_time=start
    )

    # Independent Ally: another fresh Internet, same sample and schedule.
    ally_session = ReproSession(config)
    _sample_and_start(ally_session)  # warm the same datasets
    ally_counter = _count_probes(ally_session.network)
    ally_pipeline = AllyPipeline(IpidSampleBank(ally_session.network, _VP), reuse=False)
    now = start
    ally_results = []
    for candidate in chosen:
        result = ally_pipeline.verify_set(candidate, start_time=now, max_set_size=10)
        now = result.finished_at
        ally_results.append(result)
    independent = midar_counter["probes"] + ally_counter["probes"]

    # Composed: one session, one shared bank, midar then ally.
    def composed_run():
        session = ReproSession(config)
        session.report("active")
        session.dataset("active-ipv6")
        counter = _count_probes(session.network)
        midar_report = session.validate(midar_spec)
        ally_report = session.validate(ally_spec)
        return counter["probes"], midar_report, ally_report

    start_time = time.perf_counter()
    composed, midar_report, ally_report = composed_run()
    elapsed = time.perf_counter() - start_time

    # Verdict parity, both techniques, set for set.
    assert [
        (v.candidate, v.testable, v.agrees, sorted(map(sorted, v.partition)))
        for v in midar_verdicts
    ] == [
        (v.candidate, v.testable, v.agrees, sorted(map(sorted, v.partition)))
        for v in midar_report.verdicts
    ], "composed MIDAR verdicts diverged from the independent prober"
    assert [
        (frozenset(r.members), r.testable, r.agrees, tuple(sorted((frozenset(g) for g in r.partition), key=sorted)))
        for r in ally_results
    ] == [
        (v.candidate, v.testable, v.agrees, v.partition) for v in ally_report.verdicts
    ], "composed Ally verdicts diverged from the independent prober"

    # Strict probe reduction through the shared bank.
    assert composed < independent, (
        f"composed validation issued {composed} probes, independent probers "
        f"{independent} — the shared bank saved nothing"
    )
    assert ally_report.probes_reused > 0
    assert ally_report.probes_issued < ally_counter["probes"], (
        "the composed Ally pass issued no fewer probes than the independent one"
    )

    ally_saved = 1 - ally_report.probes_issued / ally_counter["probes"]
    print()
    print(
        f"independent probers: {independent} probes "
        f"(midar {midar_counter['probes']} + ally {ally_counter['probes']}); "
        f"composed midar+ally: {composed} probes "
        f"({1 - composed / independent:.1%} fewer, "
        f"ally pass {ally_saved:.1%} answered from the bank; "
        f"verdict parity held over {len(chosen)} sets, {1000 * elapsed:.0f} ms)"
    )
    bench_json.record(
        "validation",
        "shared_bank_probe_reduction",
        seconds=elapsed,
        independent_probes=independent,
        composed_probes=composed,
        probes_reused=ally_report.probes_reused,
        sets=len(chosen),
    )
    benchmark.pedantic(lambda: composed, rounds=1, iterations=1)


if __name__ == "__main__":  # pragma: no cover - ad-hoc runs
    pytest.main([__file__, "-o", "python_files=bench_*.py",
                 "-o", "python_functions=bench_*", "--benchmark-disable", "-q", "-s"])
