"""Benchmark of the streaming resolution service against the batch path.

A four-snapshot churning campaign is collected once; the benchmark then
feeds the same captures through both resolution paths — the batch
:meth:`~repro.longitudinal.campaign.LongitudinalCampaign.resolve` and a
resident :class:`~repro.stream.engine.StreamingEngine` driven
sync-then-flush like the ``repro serve`` daemon — and asserts the final
(and every intermediate) report signature is byte-identical.  The parity
assertion always runs, at any scale: streaming equivalence is the gate,
the timings are the trajectory.

The streamed pass additionally publishes typed change events to a
subscriber; the record captures the sustained event throughput
(events delivered per second of streaming wall time).

Run with the usual harness, e.g.::

    REPRO_BENCH_SCALE=1.0 PYTHONPATH=src python -m pytest benchmarks \
        -o python_files='bench_*.py' -o python_functions='bench_*' -q
"""

import gc
import os
import time

import pytest

from repro.core.engine import report_signature
from repro.experiments.scenario import ScenarioConfig
from repro.longitudinal import LongitudinalCampaign, LongitudinalConfig
from repro.simnet.topology import generate_topology
from repro.sources.hitlist import HitlistConfig, build_ipv6_hitlist
from repro.stream.engine import StreamConfig, StreamingEngine

_SNAPSHOTS = 4
_CHURN = 0.05


@pytest.fixture(scope="module")
def campaign():
    scale = float(os.environ.get("REPRO_BENCH_SCALE", "1.0"))
    seed = int(os.environ.get("REPRO_BENCH_SEED", "42"))
    config = ScenarioConfig(scale=scale, seed=seed)
    network = generate_topology(config.topology_config())
    hitlist = build_ipv6_hitlist(
        network,
        HitlistConfig(
            server_coverage=config.hitlist_server_coverage,
            router_coverage=config.hitlist_router_coverage,
            seed=seed,
        ),
    )
    return LongitudinalCampaign(
        network,
        hitlist=hitlist,
        config=LongitudinalConfig(
            snapshots=_SNAPSHOTS, churn_fraction=_CHURN, seed=seed
        ),
    )


@pytest.fixture(scope="module")
def captures(campaign):
    return campaign.collect()


def _stream_replay(campaign, captures):
    """Sync + flush every capture; returns (seconds, updates, events seen)."""
    stream = StreamingEngine(StreamConfig(), options=campaign.options)
    delivered = []
    stream.subscribe(delivered.append)
    gc.collect()
    total = 0.0
    updates = []
    for capture in captures:
        start = time.perf_counter()
        stream.sync(capture.observations)
        updates.append(stream.flush())
        total += time.perf_counter() - start
    return total, updates, delivered


def bench_stream_vs_batch(benchmark, campaign, captures, bench_json):
    """The equivalence race: streamed reports == batch reports, byte for byte."""
    gc.collect()
    start = time.perf_counter()
    result = campaign.resolve(captures)
    batch_seconds = time.perf_counter() - start

    stream_seconds, updates, delivered = _stream_replay(campaign, captures)

    # The gate: every snapshot — including the final one — byte-identical.
    assert len(updates) == len(result.snapshots)
    for resolved, update in zip(result.snapshots, updates, strict=True):
        assert report_signature(update.report) == report_signature(resolved.report)

    observations_per_snapshot = len(captures[0].observations)
    events = len(delivered)
    events_per_second = events / stream_seconds if stream_seconds > 0 else 0.0
    print()
    print(
        f"stream {1000 * stream_seconds:.0f} ms vs batch "
        f"{1000 * batch_seconds:.0f} ms over {len(captures)} snapshots of "
        f"~{observations_per_snapshot} observations; {events} events "
        f"published ({events_per_second:.0f} events/s sustained)"
    )
    bench_json.record(
        "stream",
        "stream_vs_batch",
        snapshots=len(captures),
        observations_per_snapshot=observations_per_snapshot,
        stream_seconds=stream_seconds,
        batch_seconds=batch_seconds,
        events=events,
        events_per_second=events_per_second,
        # The signature parity above runs unconditionally, at every scale.
        asserted=True,
    )

    benchmark.pedantic(
        lambda: _stream_replay(campaign, captures), rounds=1, iterations=1
    )


def bench_micro_batch_ingest(benchmark, campaign, captures, bench_json):
    """Ingest throughput of the change-trigger path (observe_batch chunks)."""
    observations = captures[0].observations
    chunk = 256

    def ingest():
        stream = StreamingEngine(
            StreamConfig(emit_every_changes=4 * chunk), options=campaign.options
        )
        for offset in range(0, len(observations), chunk):
            stream.observe_batch(observations[offset : offset + chunk])
        if stream.pending_changes:
            stream.flush()
        return stream

    gc.collect()
    start = time.perf_counter()
    stream = ingest()
    seconds = time.perf_counter() - start
    assert stream.tracked_services == len(
        {(o.address, o.protocol.value) for o in observations}
    )
    rate = len(observations) / seconds if seconds > 0 else 0.0
    print(
        f"micro-batch ingest: {len(observations)} observations in "
        f"{1000 * seconds:.0f} ms ({rate:.0f} obs/s, emits={stream.emitted})"
    )
    bench_json.record(
        "stream",
        "micro_batch_ingest",
        observations=len(observations),
        chunk=chunk,
        ingest_seconds=seconds,
        observations_per_second=rate,
        emits=stream.emitted,
        asserted=True,
    )

    benchmark.pedantic(ingest, rounds=1, iterations=1)
