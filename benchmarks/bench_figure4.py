"""Benchmark / regeneration of Figure 4 — IPv6 addresses per alias set."""

from repro.experiments import figure4


def bench_figure4(benchmark, scenario):
    result = benchmark.pedantic(lambda: figure4.build(scenario), rounds=1, iterations=1)
    print()
    print(figure4.render(result))
    for label, ecdf in result.curves.items():
        if len(ecdf):
            series = ecdf.series(points=[2, 5, 10, 50, 100])
            print(label + ": " + ", ".join(f"F({int(x)})={fraction:.2f}" for x, fraction in series))

    ssh = result.curves["Active SSH"]
    snmp = result.curves["Active SNMPv3"]
    bgp = result.curves["Active BGP"]
    # Paper shape: SSH sets exist in numbers and tend to be smaller than the
    # router-based BGP/SNMPv3 sets; all curves concentrate below 100.
    assert len(ssh) > len(snmp)
    assert len(ssh) > len(bgp)
    if len(ssh) and len(snmp):
        assert ssh.median() <= snmp.median()
    for ecdf in result.curves.values():
        if len(ecdf):
            assert ecdf.evaluate(99) > 0.9
