"""Benchmark / regeneration of Figure 6 — alias / dual-stack sets per AS."""

from repro.experiments import figure6


def bench_figure6(benchmark, scenario):
    result = benchmark.pedantic(lambda: figure6.build(scenario), rounds=1, iterations=1)
    print()
    print(figure6.render(result))
    series = result.alias_sets_per_as.series(points=[1, 10, 100, 1000])
    print("Alias sets per AS: " + ", ".join(f"F({int(x)})={fraction:.2f}" for x, fraction in series))

    # Paper shape: most ASes hold few sets; only a small fraction holds more
    # than 100; every AS holding a dual-stack set also holds an alias set.
    assert result.ases_with_alias_sets > 0
    assert result.fraction_ases_over_hundred < 0.2
    assert result.alias_sets_per_as.evaluate(100) > 0.8
    assert result.ases_with_dual_stack_sets <= result.ases_with_alias_sets
