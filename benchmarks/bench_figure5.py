"""Benchmark / regeneration of Figure 5 — ASes per IPv4 alias set."""

from repro.experiments import figure5


def bench_figure5(benchmark, scenario):
    result = benchmark.pedantic(lambda: figure5.build(scenario), rounds=1, iterations=1)
    print()
    print(figure5.render(result))
    for label, ecdf in result.curves.items():
        if len(ecdf):
            series = ecdf.series(points=[1, 2, 3, 5, 10])
            print(label + ": " + ", ".join(f"F({int(x)})={fraction:.2f}" for x, fraction in series))

    # Paper shape: fewer than 10% of SSH and SNMPv3 sets span several ASes,
    # more than 35% of BGP sets do.
    assert result.multi_as_fractions["SSH"] < 0.1
    assert result.multi_as_fractions["SNMPv3"] < 0.15
    assert result.multi_as_fractions["BGP"] > 0.35
