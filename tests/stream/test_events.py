"""Tests for the typed stream event surface and its publisher."""

import io
import json

import pytest

from repro import obs
from repro.longitudinal.delta import AliasDelta
from repro.stream.events import (
    AliasSetBorn,
    AliasSetDissolved,
    AliasSetGrown,
    AliasSetMigrated,
    AliasSetShrunk,
    CoverageChanged,
    ReportEmitted,
    StreamPublisher,
    events_from_delta,
)


def make_delta(**overrides):
    base = dict(
        name="t",
        born=(),
        dissolved=(),
        grown=(),
        shrunk=(),
        migrated=(),
        unchanged=0,
        split_origins=(),
        disrupted_previous=(),
    )
    base.update(overrides)
    return AliasDelta(**base)


class TestEventShape:
    def test_kinds_are_stable_tags(self):
        assert AliasSetBorn.kind == "alias_set.born"
        assert AliasSetDissolved.kind == "alias_set.dissolved"
        assert AliasSetGrown.kind == "alias_set.grown"
        assert AliasSetShrunk.kind == "alias_set.shrunk"
        assert AliasSetMigrated.kind == "alias_set.migrated"
        assert CoverageChanged.kind == "coverage.changed"
        assert ReportEmitted.kind == "report.emitted"

    def test_to_fields_sorts_addresses(self):
        event = AliasSetBorn(
            emit=3,
            name="snapshot-3",
            family="ipv4",
            addresses=frozenset({"10.0.0.9", "10.0.0.1"}),
        )
        fields = event.to_fields()
        assert fields["kind"] == "alias_set.born"
        assert fields["addresses"] == ["10.0.0.1", "10.0.0.9"]
        assert fields["emit"] == 3
        json.dumps(fields)  # must be JSON-serialisable as-is

    def test_report_emitted_fields(self):
        event = ReportEmitted(
            emit=0,
            name="snapshot-0",
            time=10.0,
            observations=5,
            added=5,
            removed=0,
            ipv4_sets=2,
            ipv6_sets=1,
            churn_rate=None,
        )
        fields = event.to_fields()
        assert fields["churn_rate"] is None
        assert fields["ipv4_sets"] == 2


class TestEventsFromDelta:
    def test_every_category_mapped(self):
        delta = make_delta(
            born=(frozenset({"a"}),),
            dissolved=(frozenset({"b"}),),
            grown=(frozenset({"c"}),),
            shrunk=(frozenset({"d"}),),
            migrated=(frozenset({"e"}),),
        )
        events = events_from_delta(delta, emit=1, name="snapshot-1", family="ipv4")
        assert [type(e) for e in events] == [
            AliasSetBorn,
            AliasSetDissolved,
            AliasSetGrown,
            AliasSetShrunk,
            AliasSetMigrated,
        ]
        assert all(e.family == "ipv4" and e.emit == 1 for e in events)

    def test_deterministic_order_within_category(self):
        delta = make_delta(
            born=(frozenset({"10.0.0.9"}), frozenset({"10.0.0.1", "10.0.0.2"}))
        )
        events = events_from_delta(delta, emit=0, name="s", family="ipv4")
        assert [sorted(e.addresses) for e in events] == [
            ["10.0.0.1", "10.0.0.2"],
            ["10.0.0.9"],
        ]

    def test_empty_delta_no_events(self):
        assert events_from_delta(make_delta(), 0, "s", "ipv6") == []


class TestStreamPublisher:
    def event(self, kind_class=AliasSetBorn, emit=0):
        return kind_class(
            emit=emit, name=f"snapshot-{emit}", family="ipv4", addresses=frozenset({"a"})
        )

    def test_watchers_receive_published_events(self):
        publisher = StreamPublisher()
        seen = []
        publisher.subscribe(seen.append)
        event = self.event()
        publisher.publish(event)
        assert seen == [event]

    def test_kind_filter(self):
        publisher = StreamPublisher()
        seen = []
        publisher.subscribe(seen.append, kinds={"alias_set.dissolved"})
        publisher.publish(self.event(AliasSetBorn))
        publisher.publish(self.event(AliasSetDissolved))
        assert [e.kind for e in seen] == ["alias_set.dissolved"]

    def test_unsubscribe_stops_delivery(self):
        publisher = StreamPublisher()
        seen = []
        unsubscribe = publisher.subscribe(seen.append)
        publisher.publish(self.event())
        unsubscribe()
        unsubscribe()  # idempotent
        publisher.publish(self.event())
        assert len(seen) == 1
        assert len(publisher) == 0

    def test_counts_accumulate_without_watchers(self):
        publisher = StreamPublisher()
        publisher.publish_all([self.event(), self.event(AliasSetDissolved)])
        assert publisher.counts == {
            "alias_set.born": 1,
            "alias_set.dissolved": 1,
        }

    def test_watcher_exceptions_propagate(self):
        publisher = StreamPublisher()

        def broken(_event):
            raise RuntimeError("watcher broke")

        publisher.subscribe(broken)
        with pytest.raises(RuntimeError):
            publisher.publish(self.event())

    def test_obs_mirroring_when_enabled(self):
        publisher = StreamPublisher()
        buffer = io.StringIO()
        with obs.observed() as registry:
            obs.set_sink(obs.EventSink(buffer))
            publisher.publish(self.event())
        assert registry.counter_value("stream.events", kind="alias_set.born") == 1
        rows = registry.series("stream.events")
        assert rows and rows[0]["kind"] == "alias_set.born"
        line = json.loads(buffer.getvalue().splitlines()[0])
        assert line["event"] == "stream.alias_set.born"
        assert line["addresses"] == ["a"]

    def test_no_obs_traffic_when_disabled(self):
        publisher = StreamPublisher()
        publisher.publish(self.event())
        assert obs.metrics().counter_value("stream.events", kind="alias_set.born") == 0
