"""Tests for the StreamingEngine: ingest, triggers, and batch equivalence."""

import pytest

from repro.core.engine import report_signature
from repro.errors import DatasetError, SimulationError
from repro.longitudinal.campaign import LongitudinalCampaign, LongitudinalConfig
from repro.longitudinal.engine import LongitudinalEngine
from repro.simnet.device import ServiceType
from repro.simnet.topology import generate_topology, small_topology_config
from repro.sources.records import Observation
from repro.stream.engine import StreamConfig, StreamingEngine
from repro.stream.events import ReportEmitted


def ssh(address, device="device-a", timestamp=0.0):
    return Observation(
        address=address,
        protocol=ServiceType.SSH,
        source="test",
        port=22,
        timestamp=timestamp,
        fields=(
            ("banner", "SSH-2.0-OpenSSH_9.4"),
            ("capability_signature", f"caps-{device}"),
            ("host_key_fingerprint", f"key-{device}"),
        ),
    )


def quiet_network(seed=31):
    config = small_topology_config(
        seed=seed,
        loss_rate=0.0,
        cloud_rate_limited_fraction=0.0,
        isp_rate_limited_fraction=0.0,
        churn_fraction=0.0,
    )
    return generate_topology(config)


class TestStreamConfigValidation:
    def test_zero_change_trigger_rejected(self):
        with pytest.raises(SimulationError):
            StreamConfig(emit_every_changes=0)

    def test_non_positive_time_trigger_rejected(self):
        with pytest.raises(SimulationError):
            StreamConfig(emit_every_seconds=0.0)

    def test_name_format_needs_placeholder(self):
        with pytest.raises(SimulationError):
            StreamConfig(name_format="static-name")


class TestIngest:
    def test_observe_tracks_service(self):
        stream = StreamingEngine()
        assert stream.observe(ssh("10.0.0.1", "alpha")) == ()
        assert stream.tracked_services == 1
        assert stream.pending_changes == 1

    def test_identical_reobservation_only_advances_clock(self):
        stream = StreamingEngine()
        stream.observe(ssh("10.0.0.1", "alpha", timestamp=0.0))
        before = stream.pending_changes
        stream.observe(ssh("10.0.0.1", "alpha", timestamp=100.0))
        assert stream.pending_changes == before
        assert stream.clock == 100.0

    def test_identity_change_stages_remove_plus_add(self):
        stream = StreamingEngine()
        stream.observe(ssh("10.0.0.1", "alpha"))
        stream.observe(ssh("10.0.0.1", "beta"))
        assert stream.pending_changes == 3  # 1 add, then remove+add
        assert stream.tracked_services == 1

    def test_retire_unknown_service_is_noop(self):
        stream = StreamingEngine()
        assert stream.retire("10.0.0.1", ServiceType.SSH) == ()
        assert stream.pending_changes == 0

    def test_retire_stages_removal(self):
        stream = StreamingEngine()
        stream.observe(ssh("10.0.0.1", "alpha"))
        stream.retire("10.0.0.1", ServiceType.SSH)
        assert stream.tracked_services == 0
        assert stream.pending_changes == 2

    def test_sync_reconciles_full_scan(self):
        stream = StreamingEngine()
        stream.sync([ssh("10.0.0.1", "alpha"), ssh("10.0.0.2", "alpha")])
        stream.flush()
        # Second scan: .2 vanished, .3 appeared, .1 unchanged.
        stream.sync([ssh("10.0.0.1", "alpha"), ssh("10.0.0.3", "beta")])
        update = stream.flush()
        report = update.events[-1]
        assert isinstance(report, ReportEmitted)
        assert report.added == 1
        assert report.removed == 1
        assert stream.tracked_services == 2

    def test_live_observations_round_trip(self):
        stream = StreamingEngine()
        observations = [ssh("10.0.0.1", "alpha"), ssh("10.0.0.2", "beta")]
        stream.sync(observations)
        assert sorted(o.address for o in stream.live_observations()) == [
            "10.0.0.1",
            "10.0.0.2",
        ]


class TestFlush:
    def test_flush_empty_stream_raises(self):
        with pytest.raises(DatasetError):
            StreamingEngine().flush()

    def test_flush_names_follow_emit_sequence(self):
        stream = StreamingEngine()
        stream.observe(ssh("10.0.0.1"))
        assert stream.flush().name == "snapshot-0"
        stream.observe(ssh("10.0.0.2"))
        assert stream.flush().name == "snapshot-1"
        assert stream.emitted == 2

    def test_flush_accepts_explicit_name(self):
        stream = StreamingEngine()
        stream.observe(ssh("10.0.0.1"))
        assert stream.flush(name="custom").report.name == "custom"

    def test_custom_name_format(self):
        stream = StreamingEngine(StreamConfig(name_format="live-{}"))
        stream.observe(ssh("10.0.0.1"))
        assert stream.flush().name == "live-0"

    def test_flush_without_new_changes_emits_empty_window(self):
        stream = StreamingEngine()
        stream.observe(ssh("10.0.0.1"))
        stream.flush()
        update = stream.flush()
        report = update.events[-1]
        assert report.added == 0 and report.removed == 0
        assert update.emit == 1

    def test_report_emitted_is_always_last_event(self):
        stream = StreamingEngine()
        stream.observe(ssh("10.0.0.1", "alpha"))
        stream.observe(ssh("10.0.0.2", "alpha"))
        update = stream.flush()
        assert isinstance(update.events[-1], ReportEmitted)


class TestChangeTrigger:
    def test_emits_once_threshold_reached(self):
        stream = StreamingEngine(StreamConfig(emit_every_changes=2))
        assert stream.observe(ssh("10.0.0.1", "alpha")) == ()
        updates = stream.observe(ssh("10.0.0.2", "alpha"))
        assert len(updates) == 1
        assert updates[0].name == "snapshot-0"
        assert stream.pending_changes == 0

    def test_batch_is_atomic(self):
        stream = StreamingEngine(StreamConfig(emit_every_changes=2))
        updates = stream.observe_batch(
            [ssh("10.0.0.1"), ssh("10.0.0.2", "b"), ssh("10.0.0.3", "c")]
        )
        # One emit after the whole batch, not one per threshold crossing.
        assert len(updates) == 1
        assert updates[0].events[-1].added == 3


class TestTimeTrigger:
    def test_boundary_crossing_emits_pre_boundary_state(self):
        stream = StreamingEngine(StreamConfig(emit_every_seconds=100.0))
        stream.observe(ssh("10.0.0.1", "alpha", timestamp=0.0))
        assert stream.observe(ssh("10.0.0.2", "beta", timestamp=50.0)) == ()
        updates = stream.observe(ssh("10.0.0.3", "gamma", timestamp=120.0))
        assert len(updates) == 1
        # The emitted report holds only the pre-boundary observations.
        assert updates[0].events[-1].observations == 2

    def test_aligned_boundaries_skip_quiet_intervals(self):
        stream = StreamingEngine(StreamConfig(emit_every_seconds=100.0))
        stream.observe(ssh("10.0.0.1", "alpha", timestamp=0.0))
        updates = stream.observe(ssh("10.0.0.2", "beta", timestamp=950.0))
        assert len(updates) == 1  # one emit, not nine
        # Next boundary is aligned past the incoming timestamp.
        assert stream.observe(ssh("10.0.0.3", "gamma", timestamp=990.0)) == ()
        assert len(stream.observe(ssh("10.0.0.4", "delta", timestamp=1000.0))) == 1


class TestBatchEquivalence:
    """The equivalence gate: stream == batch campaign, byte for byte."""

    def campaign(self, seed=31, snapshots=4, churn=0.05):
        return LongitudinalCampaign(
            quiet_network(seed=seed),
            config=LongitudinalConfig(
                snapshots=snapshots, churn_fraction=churn, seed=seed
            ),
        )

    def test_stream_matches_batch_signatures_and_event_counts(self):
        snapshots = 4
        batch = self.campaign()
        result = batch.resolve(batch.collect())

        streamed = self.campaign()  # same seed: identical capture sequence
        stream = StreamingEngine()
        updates = []
        previous = None
        for poll in range(snapshots):
            capture = streamed.capture(poll, previous)
            assert stream.sync(capture.observations) == ()
            updates.append(stream.flush())
            previous = capture.observations

        assert len(updates) == len(result.snapshots)
        for resolved, update in zip(result.snapshots, updates, strict=True):
            assert report_signature(update.report) == report_signature(
                resolved.report
            )
            for family in ("ipv4", "ipv6"):
                batch_delta = getattr(resolved.resolution, f"{family}_delta")
                stream_delta = getattr(update.resolution, f"{family}_delta")
                assert stream_delta.counts() == batch_delta.counts()

    def test_event_counts_match_delta_totals(self):
        snapshots = 3
        campaign = self.campaign(snapshots=snapshots)
        stream = StreamingEngine()
        previous = None
        expected = {kind: 0 for kind in ("born", "dissolved", "grown", "shrunk", "migrated")}
        for poll in range(snapshots):
            capture = campaign.capture(poll, previous)
            stream.sync(capture.observations)
            update = stream.flush()
            for delta in (update.resolution.ipv4_delta, update.resolution.ipv6_delta):
                for kind in expected:
                    expected[kind] += len(getattr(delta, kind))
            previous = capture.observations
        for kind, total in expected.items():
            assert stream.publisher.counts.get(f"alias_set.{kind}", 0) == total
        assert stream.publisher.counts["report.emitted"] == snapshots

    def test_stage_derive_equals_apply(self):
        """The engine seam the stream relies on: stage+derive == apply."""
        campaign = self.campaign(snapshots=2)
        captures = campaign.collect()
        applied = LongitudinalEngine()
        applied.bootstrap(captures[0].observations, name="snapshot-0")
        reference = applied.apply(captures[1].delta, name="snapshot-1")

        staged = LongitudinalEngine()
        staged.stage((), captures[0].observations)
        staged.derive("snapshot-0")
        staged.stage(captures[1].delta.removed, captures[1].delta.added)
        resolution = staged.derive("snapshot-1")
        assert report_signature(resolution.report) == report_signature(
            reference.report
        )
