"""Tests for the streaming daemon loop."""

import signal

import pytest

from repro.core.engine import report_signature
from repro.errors import SimulationError
from repro.longitudinal.campaign import LongitudinalCampaign, LongitudinalConfig
from repro.simnet.topology import generate_topology, small_topology_config
from repro.stream.daemon import DaemonConfig, StreamDaemon
from repro.stream.engine import StreamConfig, StreamingEngine


def quiet_network(seed=31):
    config = small_topology_config(
        seed=seed,
        loss_rate=0.0,
        cloud_rate_limited_fraction=0.0,
        isp_rate_limited_fraction=0.0,
        churn_fraction=0.0,
    )
    return generate_topology(config)


def make_campaign(seed=31, snapshots=4, churn=0.05):
    return LongitudinalCampaign(
        quiet_network(seed=seed),
        config=LongitudinalConfig(snapshots=snapshots, churn_fraction=churn, seed=seed),
    )


class TestDaemonConfigValidation:
    def test_zero_max_polls_rejected(self):
        with pytest.raises(SimulationError):
            DaemonConfig(max_polls=0)

    def test_negative_poll_interval_rejected(self):
        with pytest.raises(SimulationError):
            DaemonConfig(poll_interval=-1.0)

    def test_zero_checkpoint_every_rejected(self):
        with pytest.raises(SimulationError):
            DaemonConfig(checkpoint_every=0)

    def test_resume_without_previous_rejected(self):
        with pytest.raises(SimulationError):
            StreamDaemon(make_campaign(), StreamingEngine(), start=2)


class TestDaemonLoop:
    def test_each_poll_emits_one_report(self):
        daemon = StreamDaemon(
            make_campaign(), StreamingEngine(), DaemonConfig(max_polls=3)
        )
        updates = daemon.run()
        assert [u.name for u in updates] == ["snapshot-0", "snapshot-1", "snapshot-2"]
        assert daemon.polls == 3
        assert daemon.stream.emitted == 3

    def test_stop_finishes_current_poll(self):
        daemon = StreamDaemon(
            make_campaign(), StreamingEngine(), DaemonConfig(max_polls=10)
        )
        seen = []

        def stop_after_two(update):
            seen.append(update)
            if len(seen) == 2:
                daemon.stop()

        daemon.stream.subscribe(stop_after_two, kinds={"report.emitted"})
        updates = daemon.run()
        assert len(updates) == 2
        assert daemon.stopped

    def test_updates_generator_yields_incrementally(self):
        daemon = StreamDaemon(
            make_campaign(), StreamingEngine(), DaemonConfig(max_polls=5)
        )
        iterator = daemon.updates()
        first = next(iterator)
        assert first.name == "snapshot-0"
        daemon.stop()
        assert list(iterator) == []

    def test_signal_handlers_install_and_restore(self):
        daemon = StreamDaemon(
            make_campaign(), StreamingEngine(), DaemonConfig(max_polls=1)
        )
        before = signal.getsignal(signal.SIGTERM)
        restore = daemon.install_signal_handlers()
        assert signal.getsignal(signal.SIGTERM) == daemon.stop
        assert signal.getsignal(signal.SIGINT) == daemon.stop
        restore()
        assert signal.getsignal(signal.SIGTERM) == before

    def test_change_trigger_emits_inside_a_poll(self):
        # A change threshold far below a scan size forces trigger-driven
        # emits during sync; the explicit end-of-poll flush then only
        # runs when the poll's tail produced no trigger.
        daemon = StreamDaemon(
            make_campaign(snapshots=2),
            StreamingEngine(StreamConfig(emit_every_changes=50)),
            DaemonConfig(max_polls=2),
        )
        updates = daemon.run()
        assert daemon.stream.emitted == len(updates)
        assert len(updates) >= 2


class TestDaemonEquivalence:
    """A daemon run equals the batch campaign over the same simnet."""

    def test_daemon_reports_match_batch_campaign(self):
        snapshots = 3
        batch = make_campaign(snapshots=snapshots)
        result = batch.resolve(batch.collect())

        daemon = StreamDaemon(
            make_campaign(snapshots=snapshots),
            StreamingEngine(),
            DaemonConfig(max_polls=snapshots),
        )
        updates = daemon.run()
        for resolved, update in zip(result.snapshots, updates, strict=True):
            assert report_signature(update.report) == report_signature(resolved.report)
