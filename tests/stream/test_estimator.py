"""Tests for the online churn-rate estimator, including the simnet gate."""

import pytest

from repro.errors import SimulationError
from repro.longitudinal.campaign import LongitudinalCampaign, LongitudinalConfig
from repro.simnet.topology import generate_topology, small_topology_config
from repro.stream.engine import StreamConfig, StreamingEngine
from repro.stream.estimator import ChurnRateEstimator


class TestValidation:
    def test_non_positive_interval_rejected(self):
        with pytest.raises(SimulationError):
            ChurnRateEstimator(interval=0.0)

    def test_zero_window_rejected(self):
        with pytest.raises(SimulationError):
            ChurnRateEstimator(interval=1.0, window=0)


class TestUpdate:
    def test_starts_without_an_estimate(self):
        estimator = ChurnRateEstimator(interval=100.0)
        assert estimator.rate is None
        assert estimator.windows == 0

    def test_first_window_sets_raw_rate(self):
        estimator = ChurnRateEstimator(interval=100.0)
        rate = estimator.update(reassigned=5, tracked=100, elapsed=100.0)
        assert rate == pytest.approx(0.05)

    def test_elapsed_scaling_normalises_to_interval(self):
        estimator = ChurnRateEstimator(interval=100.0)
        # 5% observed over half an interval extrapolates to 10% per interval.
        rate = estimator.update(reassigned=5, tracked=100, elapsed=50.0)
        assert rate == pytest.approx(0.10)

    def test_ewma_smoothing(self):
        estimator = ChurnRateEstimator(interval=100.0, window=3)
        estimator.update(reassigned=10, tracked=100, elapsed=100.0)  # 0.10
        rate = estimator.update(reassigned=0, tracked=100, elapsed=100.0)
        alpha = 2.0 / 4.0
        assert rate == pytest.approx((1 - alpha) * 0.10)
        assert estimator.windows == 2

    def test_no_signal_windows_leave_rate_unchanged(self):
        estimator = ChurnRateEstimator(interval=100.0)
        estimator.update(reassigned=5, tracked=100, elapsed=100.0)
        before = estimator.rate
        assert estimator.update(reassigned=3, tracked=0, elapsed=100.0) == before
        assert estimator.update(reassigned=3, tracked=10, elapsed=0.0) == before
        assert estimator.windows == 1

    def test_state_round_trip(self):
        estimator = ChurnRateEstimator(interval=100.0, window=5)
        estimator.update(reassigned=4, tracked=80, elapsed=100.0)
        estimator.update(reassigned=2, tracked=80, elapsed=100.0)
        restored = ChurnRateEstimator.restore(estimator.state())
        assert restored.rate == estimator.rate
        assert restored.windows == estimator.windows
        assert restored.interval == estimator.interval
        assert restored.window == estimator.window
        # The restored estimator continues the same EWMA series.
        assert restored.update(3, 80, 100.0) == estimator.update(3, 80, 100.0)

    def test_fresh_state_round_trip(self):
        restored = ChurnRateEstimator.restore(ChurnRateEstimator(interval=7.0).state())
        assert restored.rate is None
        assert restored.windows == 0


class TestEstimatorGate:
    """Validate the online estimate against simnet ground truth.

    On a quiet network (no loss, no rate limiting, no built-in churn)
    every removal window is driven purely by the injected churn, so the
    smoothed estimate must land near ``churn_fraction``.  Shared-SSH-key
    device groups make a small fraction of reassignments invisible (the
    identity survives the move), hence the one-sided-friendly tolerance.
    """

    def run_stream(self, churn, snapshots=8, seed=31):
        config = small_topology_config(
            seed=seed,
            loss_rate=0.0,
            cloud_rate_limited_fraction=0.0,
            isp_rate_limited_fraction=0.0,
            churn_fraction=0.0,
        )
        campaign = LongitudinalCampaign(
            generate_topology(config),
            config=LongitudinalConfig(
                snapshots=snapshots, churn_fraction=churn, seed=seed
            ),
        )
        stream = StreamingEngine(StreamConfig())
        previous = None
        for poll in range(snapshots):
            capture = campaign.capture(poll, previous)
            stream.sync(capture.observations)
            stream.flush()
            previous = capture.observations
        return stream

    def test_estimate_tracks_ground_truth(self):
        churn = 0.05
        stream = self.run_stream(churn)
        estimate = stream.estimator.rate
        assert estimate is not None
        assert estimate == pytest.approx(churn, rel=0.25)

    def test_quiet_network_estimates_zero(self):
        stream = self.run_stream(churn=0.0, snapshots=3)
        assert stream.estimator.rate == pytest.approx(0.0)

    def test_estimate_rides_report_emitted_events(self):
        stream = self.run_stream(churn=0.05, snapshots=3)
        captured = []
        stream.subscribe(captured.append, kinds={"report.emitted"})
        update = stream.flush()  # empty window: estimate carries over
        assert captured == [update.events[-1]]
        assert captured[0].churn_rate == stream.estimator.rate
