"""Tests for the longitudinal stability table renderers."""

import pytest

from repro.analysis.stability import stability_markdown, stability_rows, stability_table
from repro.longitudinal import LongitudinalCampaign, LongitudinalConfig
from repro.net.addresses import AddressFamily
from repro.simnet.topology import generate_topology, small_topology_config


@pytest.fixture(scope="module")
def result():
    config = small_topology_config(seed=11, loss_rate=0.0)
    campaign = LongitudinalCampaign(
        generate_topology(config),
        config=LongitudinalConfig(snapshots=3, churn_fraction=0.08, seed=2),
    )
    return campaign.run()


def test_rows_cover_every_snapshot(result):
    rows = stability_rows(result)
    assert len(rows) == 3
    assert [row[0] for row in rows] == [0, 1, 2]


def test_first_row_has_no_delta_columns(result):
    first = stability_rows(result)[0]
    assert first[3] == "-" and first[-1] == "-"


def test_day_column_uses_interval(result):
    rows = stability_rows(result)
    assert [row[1] for row in rows] == ["0", "7", "14"]


def test_table_renders_headers_and_title(result):
    text = stability_table(result, AddressFamily.IPV4)
    assert "Longitudinal stability (IPv4 union" in text
    assert "Persistence" in text
    assert "Churn splits" in text


def test_markdown_covers_both_families(result):
    text = stability_markdown(result)
    assert "## IPv4 union sets" in text
    assert "## IPv6 union sets" in text
    # One header row, one separator, three data rows per family.
    assert text.count("| 7 |") >= 1


def test_persistence_rendered_as_percentage(result):
    rows = stability_rows(result)
    assert rows[1][11].endswith("%")
