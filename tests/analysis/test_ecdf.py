"""Tests for the ECDF helper."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.analysis.ecdf import Ecdf


class TestEvaluate:
    def test_simple_fractions(self):
        ecdf = Ecdf([1, 2, 2, 3])
        assert ecdf.evaluate(0) == 0.0
        assert ecdf.evaluate(1) == 0.25
        assert ecdf.evaluate(2) == 0.75
        assert ecdf.evaluate(3) == 1.0
        assert ecdf.evaluate(100) == 1.0

    def test_empty_sample(self):
        assert Ecdf([]).evaluate(5) == 0.0
        assert len(Ecdf([])) == 0

    def test_fraction_between(self):
        ecdf = Ecdf([1, 2, 3, 4])
        assert ecdf.fraction_between(1, 3) == 0.5


class TestQuantiles:
    def test_median_odd(self):
        assert Ecdf([1, 5, 9]).median() == 5

    def test_median_even(self):
        assert Ecdf([1, 2, 3, 4]).median() == 2

    def test_quantile_bounds(self):
        ecdf = Ecdf([10, 20, 30, 40])
        assert ecdf.quantile(0.0) == 10
        assert ecdf.quantile(1.0) == 40

    def test_quantile_errors(self):
        with pytest.raises(ValueError):
            Ecdf([]).quantile(0.5)
        with pytest.raises(ValueError):
            Ecdf([1]).quantile(1.5)


class TestSeries:
    def test_series_is_staircase(self):
        ecdf = Ecdf([2, 2, 5])
        assert ecdf.series() == [(2, 2 / 3), (5, 1.0)]

    def test_series_custom_points(self):
        ecdf = Ecdf([1, 2, 3])
        assert ecdf.series([0, 2]) == [(0, 0.0), (2, 2 / 3)]


@given(st.lists(st.integers(min_value=0, max_value=1000), min_size=1, max_size=200))
def test_ecdf_properties(values):
    ecdf = Ecdf(values)
    # Monotone non-decreasing and bounded by [0, 1].
    points = ecdf.series()
    fractions = [fraction for _, fraction in points]
    assert all(0.0 <= fraction <= 1.0 for fraction in fractions)
    assert fractions == sorted(fractions)
    assert fractions[-1] == 1.0
    assert ecdf.evaluate(min(values) - 1) == 0.0
    assert min(values) <= ecdf.median() <= max(values)
