"""Tests for the markdown report generator."""

import pytest

from repro.analysis.report import alias_report_markdown, covered_address_summary, family_breakdown
from repro.core.pipeline import run_alias_resolution
from repro.simnet.topology import generate_topology, small_topology_config
from repro.sources.active import ActiveMeasurement
from repro.sources.hitlist import HitlistConfig, build_ipv6_hitlist


@pytest.fixture(scope="module")
def network():
    config = small_topology_config(seed=77, loss_rate=0.0)
    return generate_topology(config)


@pytest.fixture(scope="module")
def report(network):
    campaign = ActiveMeasurement(network, seed=2)
    observations = campaign.run_ipv4()
    observations.extend(campaign.run_ipv6(build_ipv6_hitlist(network, HitlistConfig(seed=2)), start_time=90_000.0))
    return run_alias_resolution(observations, name="report-test")


class TestMarkdownReport:
    def test_contains_all_sections(self, report, network):
        text = alias_report_markdown(report, network.registry)
        assert text.startswith("# Alias resolution report — report-test")
        for heading in ("## Non-singleton alias sets", "## Set sizes", "## Dual-stack sets", "## Top ASes"):
            assert heading in text

    def test_mentions_every_protocol_and_union(self, report):
        text = alias_report_markdown(report)
        for token in ("| ssh |", "| bgp |", "| snmpv3 |", "| union |"):
            assert token in text

    def test_top_as_rows_have_roles_with_registry(self, report, network):
        text = alias_report_markdown(report, network.registry)
        assert "cloud" in text or "isp" in text

    def test_without_registry_roles_unknown(self, report):
        text = alias_report_markdown(report)
        assert "unknown" in text


class TestSummaries:
    def test_covered_address_summary_keys_and_consistency(self, report):
        summary = covered_address_summary(report)
        assert set(summary) == {
            "ipv4_union_sets",
            "ipv4_union_addresses",
            "ipv6_union_sets",
            "dual_stack_sets",
            "dual_stack_ipv4",
            "dual_stack_ipv6",
        }
        assert summary["ipv4_union_addresses"] >= 2 * summary["ipv4_union_sets"] > 0
        assert summary["dual_stack_ipv4"] >= summary["dual_stack_sets"] > 0

    def test_family_breakdown_matches_report(self, report):
        breakdown = family_breakdown(report)
        assert breakdown["ipv4"]["union"] == len(report.ipv4_union.non_singleton())
        assert breakdown["ipv6"]["union"] == len(report.ipv6_union.non_singleton())
