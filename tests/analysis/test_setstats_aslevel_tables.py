"""Tests for set statistics, AS-level aggregation, and table rendering."""

from repro.analysis.aslevel import multi_as_fraction, role_split, sets_per_as_values, top_as_table
from repro.analysis.setstats import set_size_summary
from repro.analysis.tables import format_count, format_fraction, render_table
from repro.core.aliasset import AliasSet, AliasSetCollection
from repro.core.dual_stack import DualStackCollection, DualStackSet
from repro.simnet.asn import AsRegistry, AsRole, AutonomousSystem
from repro.simnet.device import ServiceType


def collection():
    sets = [
        AliasSet("a", frozenset({"10.0.0.1", "10.0.0.2"}), frozenset({ServiceType.SSH})),
        AliasSet("b", frozenset({"10.1.0.1", "10.1.0.2", "10.2.0.1"}), frozenset({ServiceType.BGP})),
        AliasSet("c", frozenset({"10.3.0.1"}), frozenset({ServiceType.SSH})),
    ]
    address_asn = {
        "10.0.0.1": 100,
        "10.0.0.2": 100,
        "10.1.0.1": 200,
        "10.1.0.2": 200,
        "10.2.0.1": 300,
        "10.3.0.1": 100,
    }
    return AliasSetCollection("test", sets, address_asn)


class TestSetStats:
    def test_summary_values(self):
        summary = set_size_summary(collection())
        assert summary.set_count == 2
        assert summary.covered_addresses == 5
        assert summary.fraction_exactly_two == 0.5
        assert summary.fraction_at_most_ten == 1.0
        assert summary.max_size == 3

    def test_empty_collection(self):
        summary = set_size_summary(AliasSetCollection("empty"))
        assert summary.set_count == 0
        assert summary.max_size == 0


class TestAsLevel:
    def registry(self):
        registry = AsRegistry()
        registry.add(AutonomousSystem(asn=100, name="Cloud-1", role=AsRole.CLOUD))
        registry.add(AutonomousSystem(asn=200, name="ISP-1", role=AsRole.ISP))
        registry.add(AutonomousSystem(asn=300, name="ISP-2", role=AsRole.ISP))
        return registry

    def test_top_as_table_with_roles(self):
        entries = top_as_table(collection(), self.registry(), count=2)
        assert entries[0].rank == 1
        assert {entry.asn for entry in entries} <= {100, 200, 300}
        assert all(entry.role is not None for entry in entries)

    def test_role_split(self):
        entries = top_as_table(collection(), self.registry(), count=3)
        counts = role_split(entries)
        assert counts[AsRole.ISP] >= 1

    def test_multi_as_fraction(self):
        assert multi_as_fraction(collection()) == 0.5

    def test_sets_per_as_values_alias(self):
        values = sets_per_as_values(collection())
        assert sorted(values) == [1, 1, 1]

    def test_sets_per_as_values_dual_stack(self):
        dual = DualStackCollection(
            "dual",
            [
                DualStackSet("x", frozenset({"10.0.0.1"}), frozenset({"2001:db8::1"}), frozenset()),
            ],
            address_asn={"10.0.0.1": 100, "2001:db8::1": 100},
        )
        assert sets_per_as_values(dual) == [1]

    def test_top_as_without_registry(self):
        entries = top_as_table(collection(), None, count=1)
        assert entries[0].role is None


class TestTables:
    def test_format_count(self):
        assert format_count(532) == "532"
        assert format_count(1_500) == "1.5k"
        assert format_count(15_900) == "16k"
        assert format_count(3_200_000) == "3.2M"
        assert format_count(24_400_000) == "24M"

    def test_format_fraction(self):
        assert format_fraction(0.964) == "96.4%"

    def test_render_table_alignment(self):
        text = render_table(["Name", "Count"], [["ssh", 10], ["bgp", 2]], title="Demo")
        lines = text.splitlines()
        assert lines[0] == "Demo"
        assert "Name" in lines[1] and "Count" in lines[1]
        assert len(lines) == 5
        # All data lines have the same separator positions.
        assert lines[3].index("|") == lines[4].index("|")
