"""Tests for the normalised observation schema."""

from repro.net.addresses import AddressFamily
from repro.protocols.bgp.capabilities import Capability
from repro.protocols.bgp.client import BgpScanRecord
from repro.protocols.bgp.messages import BgpOpen
from repro.protocols.snmp.client import SnmpScanRecord
from repro.protocols.ssh.client import SshScanRecord
from repro.simnet.device import ServiceType
from repro.sources.records import ObservationDataset, observation_from_record


def ssh_record(address="10.0.0.1"):
    return SshScanRecord(
        address=address,
        success=True,
        banner="SSH-2.0-OpenSSH_9.3",
        host_key_algorithm="ssh-ed25519",
        host_key_fingerprint="SHA256:abcdef",
        capability_signature="cafe" * 16,
    )


def bgp_record(address="10.0.0.2"):
    message = BgpOpen(
        my_as=3320,
        hold_time=180,
        bgp_identifier="10.0.0.2",
        capabilities=(Capability.route_refresh(),),
    )
    return BgpScanRecord(address=address, success=True, open_message=message)


def snmp_record(address="10.0.0.3"):
    return SnmpScanRecord(
        address=address, success=True, engine_id_hex="80001f880301020304", engine_boots=4, engine_time=99
    )


class TestConversion:
    def test_ssh_fields(self):
        observation = observation_from_record(ssh_record(), source="active", asn=14061)
        assert observation.protocol is ServiceType.SSH
        assert observation.field("banner") == "SSH-2.0-OpenSSH_9.3"
        assert observation.field("host_key_fingerprint") == "SHA256:abcdef"
        assert observation.asn == 14061
        assert observation.has_identifier_material
        assert observation.is_standard_port()

    def test_bgp_fields(self):
        observation = observation_from_record(bgp_record(), source="active")
        assert observation.protocol is ServiceType.BGP
        assert observation.field("bgp_identifier") == "10.0.0.2"
        assert observation.field("asn") == "3320"
        assert observation.field("hold_time") == "180"
        assert "2:" in observation.field("capabilities")

    def test_bgp_without_open_has_no_identifier_material(self):
        record = BgpScanRecord(address="10.0.0.9", success=True, closed_immediately=True)
        observation = observation_from_record(record, source="active")
        assert not observation.has_identifier_material

    def test_snmp_fields(self):
        observation = observation_from_record(snmp_record(), source="active")
        assert observation.protocol is ServiceType.SNMPV3
        assert observation.field("engine_id") == "80001f880301020304"

    def test_port_override(self):
        observation = observation_from_record(ssh_record(), source="censys", port=2222)
        assert observation.port == 2222
        assert not observation.is_standard_port()

    def test_field_default(self):
        observation = observation_from_record(ssh_record(), source="active")
        assert observation.field("missing", "fallback") == "fallback"

    def test_family_detection(self):
        observation = observation_from_record(ssh_record(address="2001:db8::7"), source="active")
        assert observation.family is AddressFamily.IPV6


class TestObservationDataset:
    def build(self):
        dataset = ObservationDataset("active")
        dataset.add(observation_from_record(ssh_record("10.0.0.1"), source="active", asn=1))
        dataset.add(observation_from_record(ssh_record("2001:db8::1"), source="active", asn=1))
        dataset.add(observation_from_record(bgp_record("10.0.0.2"), source="active", asn=2))
        dataset.add(observation_from_record(snmp_record("10.0.0.3"), source="active", asn=2))
        return dataset

    def test_lengths_and_iteration(self):
        dataset = self.build()
        assert len(dataset) == 4
        assert len(list(dataset)) == 4

    def test_by_protocol(self):
        dataset = self.build()
        assert len(dataset.by_protocol(ServiceType.SSH)) == 2
        assert len(dataset.by_protocol(ServiceType.BGP)) == 1

    def test_addresses_filters(self):
        dataset = self.build()
        assert dataset.addresses(ServiceType.SSH) == {"10.0.0.1", "2001:db8::1"}
        assert dataset.addresses(ServiceType.SSH, AddressFamily.IPV4) == {"10.0.0.1"}
        assert dataset.addresses(family=AddressFamily.IPV4) == {"10.0.0.1", "10.0.0.2", "10.0.0.3"}

    def test_asns(self):
        dataset = self.build()
        assert dataset.asns() == {1, 2}
        assert dataset.asns(ServiceType.SSH) == {1}

    def test_protocols_and_filter(self):
        dataset = self.build()
        assert dataset.protocols() == {ServiceType.SSH, ServiceType.BGP, ServiceType.SNMPV3}
        ssh_only = dataset.filter(lambda obs: obs.protocol is ServiceType.SSH)
        assert len(ssh_only) == 2
        assert ssh_only.name == "active"
