"""Tie-breaking tests for merge_datasets (the paper's dataset union rules)."""

from repro.simnet.device import ServiceType
from repro.sources.merge import merge_datasets
from repro.sources.records import Observation, ObservationDataset

SSH_FIELDS = (
    ("banner", "SSH-2.0-OpenSSH_9.4"),
    ("capability_signature", "caps"),
    ("host_key_fingerprint", "key"),
)


def observation(
    address="10.0.0.1",
    protocol=ServiceType.SSH,
    port=22,
    timestamp=0.0,
    fields=SSH_FIELDS,
    source="test",
):
    return Observation(
        address=address,
        protocol=protocol,
        source=source,
        port=port,
        timestamp=timestamp,
        fields=fields,
    )


def dataset(name, *observations):
    return ObservationDataset(name, observations)


class TestTieBreaking:
    def test_identifier_material_beats_timestamp(self):
        """A fresh but empty observation must not displace identifier data."""
        with_material = observation(timestamp=0.0, source="old")
        without_material = observation(timestamp=999.0, fields=(), source="new")
        merged = merge_datasets(
            dataset("a", with_material), dataset("b", without_material)
        )
        assert list(merged) == [with_material]
        # Input order must not matter for the outcome.
        merged = merge_datasets(
            dataset("a", without_material), dataset("b", with_material)
        )
        assert list(merged) == [with_material]

    def test_later_timestamp_wins_among_identifier_carriers(self):
        early = observation(timestamp=10.0, source="early")
        late = observation(timestamp=20.0, source="late")
        merged = merge_datasets(dataset("a", early), dataset("b", late))
        assert list(merged) == [late]
        merged = merge_datasets(dataset("a", late), dataset("b", early))
        assert list(merged) == [late]

    def test_later_timestamp_wins_among_empty_observations(self):
        early = observation(timestamp=10.0, fields=(), source="early")
        late = observation(timestamp=20.0, fields=(), source="late")
        merged = merge_datasets(dataset("a", early), dataset("b", late))
        assert list(merged) == [late]

    def test_equal_timestamps_keep_first_seen(self):
        first = observation(timestamp=10.0, source="first")
        second = observation(timestamp=10.0, source="second")
        merged = merge_datasets(dataset("a", first), dataset("b", second))
        # _prefer uses a strict comparison: ties keep the incumbent.
        assert list(merged) == [first]


class TestFiltering:
    def test_non_standard_ports_dropped(self):
        standard = observation(port=22)
        odd_port = observation(address="10.0.0.2", port=2222)
        merged = merge_datasets(dataset("a", standard, odd_port))
        assert list(merged) == [standard]

    def test_protocol_filter_drops_other_protocols(self):
        ssh = observation()
        bgp = observation(address="10.0.0.2", protocol=ServiceType.BGP, port=179, fields=())
        merged = merge_datasets(
            dataset("a", ssh, bgp), protocols=(ServiceType.SSH,)
        )
        assert list(merged) == [ssh]

    def test_distinct_protocols_on_one_address_both_kept(self):
        ssh = observation()
        bgp = observation(protocol=ServiceType.BGP, port=179, fields=())
        merged = merge_datasets(dataset("a", ssh, bgp))
        assert set(merged) == {ssh, bgp}
