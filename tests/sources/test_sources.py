"""Tests for the active campaign, the Censys-like source, hitlist, and merge."""

import pytest

from repro.net.addresses import AddressFamily, is_ipv6
from repro.simnet.device import DeviceRole, ServiceType
from repro.simnet.topology import generate_topology, small_topology_config
from repro.sources.active import ActiveMeasurement
from repro.sources.censys import CensysSource
from repro.sources.hitlist import HitlistConfig, build_ipv6_hitlist
from repro.sources.merge import filter_standard_ports, merge_datasets


@pytest.fixture(scope="module")
def network():
    config = small_topology_config(
        seed=31,
        loss_rate=0.0,
        cloud_rate_limited_fraction=0.0,
        isp_rate_limited_fraction=0.0,
    )
    return generate_topology(config)


@pytest.fixture(scope="module")
def active_ipv4(network):
    return ActiveMeasurement(network, seed=5).run_ipv4()


@pytest.fixture(scope="module")
def censys_ipv4(network):
    return CensysSource(network, seed=6).snapshot_ipv4()


class TestHitlist:
    def test_contains_only_ipv6(self, network):
        hitlist = build_ipv6_hitlist(network, HitlistConfig(seed=1))
        assert hitlist
        assert all(is_ipv6(address) for address in hitlist)

    def test_coverage_bias_toward_servers(self, network):
        hitlist = set(build_ipv6_hitlist(network, HitlistConfig(seed=1, noise_addresses=0)))
        server_total, server_hit, router_total, router_hit = 0, 0, 0, 0
        for device in network.devices():
            v6 = device.ipv6_addresses()
            if not v6:
                continue
            if device.role is DeviceRole.SERVER:
                server_total += len(v6)
                server_hit += sum(1 for address in v6 if address in hitlist)
            elif device.role in (DeviceRole.CORE_ROUTER, DeviceRole.BORDER_ROUTER, DeviceRole.ACCESS_ROUTER):
                router_total += len(v6)
                router_hit += sum(1 for address in v6 if address in hitlist)
        assert server_total and router_total
        assert server_hit / server_total > router_hit / router_total

    def test_noise_addresses_do_not_respond(self, network):
        hitlist = build_ipv6_hitlist(network, HitlistConfig(seed=1, noise_addresses=50))
        noise = [address for address in hitlist if address.startswith("2001:db8:dead")]
        assert len(noise) == 50
        assert all(network.device_for(address) is None for address in noise)

    def test_deterministic(self, network):
        assert build_ipv6_hitlist(network, HitlistConfig(seed=3)) == build_ipv6_hitlist(
            network, HitlistConfig(seed=3)
        )


class TestActiveMeasurement:
    def test_ipv4_covers_all_protocols(self, active_ipv4):
        assert active_ipv4.protocols() == {ServiceType.SSH, ServiceType.BGP, ServiceType.SNMPV3}

    def test_ipv4_observations_have_asn(self, active_ipv4):
        assert all(observation.asn is not None for observation in active_ipv4)

    def test_ssh_coverage_matches_ground_truth_without_loss(self, network, active_ipv4):
        expected = {
            address
            for device in network.devices()
            for address in device.service_addresses(ServiceType.SSH)
            if not is_ipv6(address)
        }
        assert active_ipv4.addresses(ServiceType.SSH, AddressFamily.IPV4) == expected

    def test_ipv6_scan_limited_by_hitlist(self, network):
        hitlist = build_ipv6_hitlist(network, HitlistConfig(seed=2, noise_addresses=0))
        dataset = ActiveMeasurement(network, seed=7).run_ipv6(hitlist)
        assert dataset.addresses(family=AddressFamily.IPV6) <= set(hitlist)
        assert len(dataset.addresses(family=AddressFamily.IPV6)) > 0

    def test_source_name(self, active_ipv4):
        assert active_ipv4.name == "active"
        assert all(observation.source == "active" for observation in active_ipv4)


class TestCensysSource:
    def test_censys_has_no_snmp(self, censys_ipv4):
        assert ServiceType.SNMPV3 not in censys_ipv4.protocols()

    def test_censys_misses_some_ssh_hosts(self, network, censys_ipv4):
        expected = {
            address
            for device in network.devices()
            for address in device.service_addresses(ServiceType.SSH)
            if not is_ipv6(address)
        }
        censys_ssh = censys_ipv4.addresses(ServiceType.SSH, AddressFamily.IPV4)
        standard = filter_standard_ports(censys_ipv4).addresses(ServiceType.SSH, AddressFamily.IPV4)
        assert standard < expected
        assert len(censys_ssh) > 0

    def test_censys_reports_nonstandard_ports(self, censys_ipv4):
        assert any(not observation.is_standard_port() for observation in censys_ipv4)

    def test_censys_ipv6_snapshot_is_nonstandard_ports_only(self, network):
        dataset = CensysSource(network, seed=8).snapshot_ipv6()
        assert all(observation.port in (80, 443) for observation in dataset)


class TestMerge:
    def test_union_is_superset_of_both_standard_port_views(self, active_ipv4, censys_ipv4):
        union = merge_datasets(active_ipv4, censys_ipv4)
        active_standard = filter_standard_ports(active_ipv4)
        censys_standard = filter_standard_ports(censys_ipv4)
        for protocol in (ServiceType.SSH, ServiceType.BGP):
            assert active_standard.addresses(protocol) <= union.addresses(protocol)
            assert censys_standard.addresses(protocol) <= union.addresses(protocol)

    def test_union_deduplicates(self, active_ipv4, censys_ipv4):
        union = merge_datasets(active_ipv4, censys_ipv4)
        keys = [(observation.address, observation.protocol) for observation in union]
        assert len(keys) == len(set(keys))

    def test_union_excludes_nonstandard_ports(self, censys_ipv4):
        union = merge_datasets(censys_ipv4)
        assert all(observation.is_standard_port() for observation in union)

    def test_union_prefers_identifier_material(self, active_ipv4, censys_ipv4):
        union = merge_datasets(active_ipv4, censys_ipv4)
        by_key = {}
        for observation in list(active_ipv4) + list(censys_ipv4):
            if not observation.is_standard_port():
                continue
            key = (observation.address, observation.protocol)
            by_key.setdefault(key, []).append(observation)
        for observation in union:
            key = (observation.address, observation.protocol)
            if any(candidate.has_identifier_material for candidate in by_key[key]):
                assert observation.has_identifier_material

    def test_protocol_filter(self, active_ipv4):
        union = merge_datasets(active_ipv4, protocols=(ServiceType.SSH,))
        assert union.protocols() == {ServiceType.SSH}
