"""Regression tests for the fixes the first repo-wide lint run forced.

Two of the 18 true positives changed observable behavior beyond guard
placement: ``SymbolTable`` now raises the typed ``DatasetError`` on
duplicate values (``typed-errors``), and the CLI writes its artifacts
through ``write_atomic`` (``atomic-write-only``).
"""

from pathlib import Path

import pytest

from repro.cli import main
from repro.core.engine import ObservationIndex
from repro.core.symbols import SymbolTable
from repro.errors import DatasetError, ReproError
from repro.simnet.device import ServiceType
from repro.sources.records import Observation


class TestSymbolTableTypedError:
    def test_duplicate_values_raise_dataset_error(self):
        with pytest.raises(DatasetError, match="duplicate values"):
            SymbolTable(["a", "b", "a"])

    def test_dataset_error_is_a_repro_error(self):
        # Library callers catch ReproError as the one base; the old bare
        # ValueError escaped that contract.
        with pytest.raises(ReproError):
            SymbolTable(["dup", "dup"])

    def test_corrupt_columnar_state_surfaces_dataset_error(self):
        # The persist v2 load path: a corrupt document with a duplicated
        # symbol column must fail typed, not with a bare ValueError.
        observation = Observation(
            address="10.0.0.1",
            protocol=ServiceType.SSH,
            source="fixture",
            port=22,
            timestamp=0.0,
            asn=None,
            fields=(
                ("banner", "SSH-2.0-OpenSSH_9.4"),
                ("capability_signature", "caps-alpha"),
                ("host_key_fingerprint", "key-alpha"),
            ),
        )
        state = ObservationIndex.build([observation]).export_columnar()
        assert state["addresses"], "fixture must intern at least one address"
        state["addresses"] = state["addresses"] + state["addresses"]
        with pytest.raises(DatasetError):
            ObservationIndex.from_columnar(state)

    def test_unique_values_still_construct(self):
        table = SymbolTable(["a", "b"])
        assert table.lookup("b") == 1
        assert list(table) == ["a", "b"]


class TestCliArtifactsAtomic:
    @pytest.fixture(scope="class")
    def resolved(self, tmp_path_factory):
        base = tmp_path_factory.mktemp("cli-atomic")
        scan_dir = base / "scan"
        out_dir = base / "resolved"
        assert main(
            ["scan", "--scale", "0.1", "--seed", "3", "--output", str(scan_dir)]
        ) == 0
        assert main(
            [
                "resolve",
                str(scan_dir / "active.jsonl"),
                str(scan_dir / "censys.jsonl"),
                "--output", str(out_dir),
                "--metrics", str(out_dir / "metrics.json"),
            ]
        ) == 0
        return out_dir

    def test_artifacts_written(self, resolved):
        assert (resolved / "report.md").read_text().startswith(
            "# Alias resolution report"
        )
        assert (resolved / "metrics.json").exists()

    def test_no_temporary_residue(self, resolved):
        # write_atomic stages as <name>.tmp then os.replace()s; a leftover
        # .tmp means a write bypassed the atomic path (or tore).
        residue = list(Path(resolved).rglob("*.tmp"))
        assert residue == []
