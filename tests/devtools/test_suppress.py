"""Inline suppression behavior: honored with a reason, finding without."""

import textwrap

from repro.devtools.findings import ModuleUnderLint
from repro.devtools.runner import lint_module, lint_source


def _lint(source: str, module: str = "repro.core.fixture"):
    return lint_source(textwrap.dedent(source), module=module, path="fixture.py")


def _lint_counting(source: str, module: str = "repro.core.fixture"):
    parsed = ModuleUnderLint.from_source(
        textwrap.dedent(source), module=module, path="fixture.py"
    )
    return lint_module(parsed)


class TestSuppressions:
    def test_suppression_with_reason_drops_the_finding(self):
        findings, suppressed = _lint_counting(
            """
            import time

            now = time.time()  # repro-lint: disable=no-wall-clock -- clock shim boundary
            """
        )
        assert findings == []
        assert suppressed == 1

    def test_suppression_only_covers_named_rules(self):
        findings = _lint(
            """
            import time
            import random

            now = time.time()  # repro-lint: disable=no-unseeded-random -- wrong rule named
            """
        )
        assert [finding.rule for finding in findings] == ["no-wall-clock"]

    def test_multiple_rules_comma_separated(self):
        findings, suppressed = _lint_counting(
            """
            import time
            import random

            pair = (time.time(), random.random())  # repro-lint: disable=no-wall-clock,no-unseeded-random -- fixture exercising both
            """
        )
        assert findings == []
        assert suppressed == 2

    def test_missing_reason_is_a_finding_and_does_not_suppress(self):
        findings = _lint(
            """
            import time

            now = time.time()  # repro-lint: disable=no-wall-clock
            """
        )
        rules = sorted(finding.rule for finding in findings)
        assert rules == ["no-wall-clock", "suppression"]
        [problem] = [f for f in findings if f.rule == "suppression"]
        assert "reason" in problem.message

    def test_unknown_rule_is_a_finding(self):
        findings = _lint(
            """
            x = 1  # repro-lint: disable=no-such-rule -- misremembered id
            """
        )
        assert [finding.rule for finding in findings] == ["suppression"]
        assert "no-such-rule" in findings[0].message

    def test_empty_rule_list_is_a_finding(self):
        findings = _lint(
            """
            x = 1  # repro-lint: disable= -- suppressed what exactly
            """
        )
        assert [finding.rule for finding in findings] == ["suppression"]
        assert "names no rule" in findings[0].message

    def test_pattern_inside_string_literal_is_ignored(self):
        findings = _lint(
            """
            import time

            DOC = "# repro-lint: disable=no-wall-clock -- not a comment"
            now = time.time()
            """
        )
        assert [finding.rule for finding in findings] == ["no-wall-clock"]

    def test_suppression_on_a_different_line_does_not_apply(self):
        findings = _lint(
            """
            import time

            # repro-lint: disable=no-wall-clock -- comment on its own line
            now = time.time()
            """
        )
        assert [finding.rule for finding in findings] == ["no-wall-clock"]
