"""Per-rule fixture tests: each rule fires on its bad shape, stays quiet
on the good one, and respects its module scope."""

import textwrap

from repro.devtools import lint_source


def _lint(source: str, module: str):
    return lint_source(textwrap.dedent(source), module=module, path="fixture.py")


def _rules(findings):
    return [finding.rule for finding in findings]


class TestNoWallClock:
    BAD = """
        import time
        import datetime

        def stamp():
            return time.time(), datetime.datetime.now()
    """

    def test_fires_in_deterministic_package(self):
        findings = _lint(self.BAD, "repro.core.clocked")
        assert _rules(findings) == ["no-wall-clock", "no-wall-clock"]
        assert "time.time" in findings[0].message
        assert findings[0].fixit

    def test_quiet_in_obs_trace(self):
        assert _lint(self.BAD, "repro.obs.trace") == []

    def test_quiet_in_tests_and_benchmarks(self):
        assert _lint(self.BAD, "tests.core.test_clocked") == []
        assert _lint(self.BAD, "benchmarks.bench_clocked") == []

    def test_sleep_is_not_a_wall_clock_read(self):
        source = """
            import time

            def pace():
                time.sleep(0.1)
        """
        assert _lint(source, "repro.stream.pacer") == []

    def test_from_import_binding_resolves(self):
        source = """
            from time import perf_counter

            def stamp():
                return perf_counter()
        """
        findings = _lint(source, "repro.validation.timed")
        assert _rules(findings) == ["no-wall-clock"]


class TestNoUnseededRandom:
    def test_module_generator_draw_fires(self):
        source = """
            import random

            def draw():
                return random.random()
        """
        findings = _lint(source, "repro.experiments.sampler")
        assert _rules(findings) == ["no-unseeded-random"]
        assert "unseeded" in findings[0].message

    def test_unseeded_constructor_and_systemrandom_fire(self):
        source = """
            import random

            a = random.Random()
            b = random.SystemRandom()
        """
        findings = _lint(source, "repro.longitudinal.churn")
        assert _rules(findings) == ["no-unseeded-random", "no-unseeded-random"]

    def test_seeded_constructor_is_quiet(self):
        source = """
            import random

            def generator(seed):
                return random.Random(seed)
        """
        assert _lint(source, "repro.core.engine_x") == []

    def test_quiet_outside_deterministic_packages(self):
        source = """
            import random

            jitter = random.random()
        """
        assert _lint(source, "repro.simnet.network") == []


class TestSortedBeforeRender:
    def test_set_into_join_fires(self):
        source = """
            def render(names):
                return ", ".join({name.lower() for name in names})
        """
        findings = _lint(source, "repro.api.render")
        assert _rules(findings) == ["sorted-before-render"]
        assert "hash salt" in findings[0].message

    def test_set_call_into_hashlib_fires(self):
        source = """
            import hashlib

            def digest(values):
                return hashlib.sha256(set(values))
        """
        findings = _lint(source, "repro.core.signature")
        assert _rules(findings) == ["sorted-before-render"]

    def test_comprehension_over_set_literal_fires(self):
        source = """
            def render():
                return ",".join(str(v) for v in {2, 1, 3})
        """
        findings = _lint(source, "repro.api.render")
        assert _rules(findings) == ["sorted-before-render"]

    def test_sorted_wrapper_is_quiet(self):
        source = """
            def render(names):
                return ", ".join(sorted({name.lower() for name in names}))
        """
        assert _lint(source, "repro.api.render") == []

    def test_quiet_outside_repro(self):
        source = """
            def render(names):
                return ", ".join({n for n in names})
        """
        assert _lint(source, "tests.api.test_render") == []


class TestAtomicWriteOnly:
    BAD = """
        import json

        def save(path, doc, handle):
            path.write_text("x")
            json.dump(doc, handle)
            with open(path, "w") as out:
                out.write("x")
    """

    def test_direct_writes_fire_on_persistence_paths(self):
        findings = _lint(self.BAD, "repro.persist.store")
        assert _rules(findings) == ["atomic-write-only"] * 3
        assert "write_atomic" in findings[0].fixit

    def test_cli_is_a_persistence_path(self):
        findings = _lint(self.BAD, "repro.cli")
        assert _rules(findings) == ["atomic-write-only"] * 3

    def test_primitive_module_is_exempt(self):
        assert _lint(self.BAD, "repro.persist.files") == []

    def test_reads_are_quiet(self):
        source = """
            def load(path):
                with open(path) as handle:
                    return handle.read()
        """
        assert _lint(source, "repro.persist.store") == []

    def test_quiet_outside_persistence_packages(self):
        assert _lint(self.BAD, "repro.api.session") == []


class TestObsFastPath:
    def test_unguarded_call_fires(self):
        source = """
            from repro import obs

            def record(kind):
                obs.add("session.cache", 1, kind=kind)
        """
        findings = _lint(source, "repro.api.session_x")
        assert _rules(findings) == ["obs-fast-path"]
        assert "is_enabled" in findings[0].fixit

    def test_lexical_guard_is_quiet(self):
        source = """
            from repro import obs

            def record(kind):
                if obs.is_enabled():
                    obs.add("session.cache", 1, kind=kind)
        """
        assert _lint(source, "repro.api.session_x") == []

    def test_early_return_guard_is_quiet(self):
        source = """
            from repro import obs

            def record(kind):
                if not obs.is_enabled():
                    return
                obs.add("session.cache", 1, kind=kind)
        """
        assert _lint(source, "repro.api.session_x") == []

    def test_nested_function_resets_guard(self):
        source = """
            from repro import obs

            def outer():
                if obs.is_enabled():
                    def inner():
                        obs.add("stream.polls", 1)
                    return inner
        """
        findings = _lint(source, "repro.stream.service_x")
        assert _rules(findings) == ["obs-fast-path"]

    def test_negative_branch_is_unguarded(self):
        source = """
            from repro import obs

            def record():
                if not obs.is_enabled():
                    obs.add("oops", 1)
        """
        findings = _lint(source, "repro.api.session_x")
        assert _rules(findings) == ["obs-fast-path"]

    def test_span_is_exempt_and_obs_package_is_exempt(self):
        spans = """
            from repro import obs

            def traced():
                with obs.span("index.build"):
                    pass
        """
        assert _lint(spans, "repro.api.parallel_x") == []
        unguarded = """
            from repro import obs

            def record():
                obs.add("self", 1)
        """
        assert _lint(unguarded, "repro.obs.helpers") == []


class TestFrozenSpec:
    def test_unfrozen_dataclass_fires(self):
        source = """
            import dataclasses

            @dataclasses.dataclass
            class SourceSpec:
                name: str
        """
        findings = _lint(source, "repro.api.sources")
        assert _rules(findings) == ["frozen-spec"]
        assert "SourceSpec" in findings[0].message

    def test_frozen_false_fires(self):
        source = """
            from dataclasses import dataclass

            @dataclass(frozen=False)
            class StreamConfig:
                interval: float
        """
        findings = _lint(source, "repro.stream.engine")
        assert _rules(findings) == ["frozen-spec"]

    def test_frozen_true_is_quiet(self):
        source = """
            import dataclasses

            @dataclasses.dataclass(frozen=True, slots=True)
            class ValidatorSpec:
                technique: str
        """
        assert _lint(source, "repro.validation.spec") == []

    def test_quiet_outside_spec_modules(self):
        source = """
            import dataclasses

            @dataclasses.dataclass
            class Scratch:
                value: int
        """
        assert _lint(source, "repro.api.session_x") == []


class TestTypedErrors:
    def test_bare_valueerror_fires_on_persist_path(self):
        source = """
            def load(doc):
                if "v" not in doc:
                    raise ValueError("missing version")
        """
        findings = _lint(source, "repro.persist.store")
        assert _rules(findings) == ["typed-errors"]
        assert "DatasetError" in findings[0].fixit

    def test_runtime_and_exception_fire(self):
        source = """
            def check(ok):
                if not ok:
                    raise RuntimeError("nope")
                raise Exception("never")
        """
        findings = _lint(source, "repro.io.datasets_x")
        assert _rules(findings) == ["typed-errors", "typed-errors"]

    def test_typed_raise_is_quiet(self):
        source = """
            from repro.errors import PersistError

            def load(doc):
                if "v" not in doc:
                    raise PersistError("missing version")
        """
        assert _lint(source, "repro.persist.store") == []

    def test_bare_reraise_is_quiet(self):
        source = """
            def passthrough():
                try:
                    work()
                except KeyError:
                    raise
        """
        assert _lint(source, "repro.api.registry") == []

    def test_quiet_outside_contract_paths(self):
        source = """
            def check(ok):
                if not ok:
                    raise ValueError("fine here")
        """
        assert _lint(source, "repro.core.engine_x") == []
