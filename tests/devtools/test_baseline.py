"""Baseline load, matching, and the staleness guarantees."""

import json
import textwrap

import pytest

from repro.devtools.baseline import (
    STALE_BASELINE_RULE,
    Baseline,
    BaselineEntry,
    render_baseline,
)
from repro.devtools.findings import Finding
from repro.devtools.runner import lint_paths
from repro.errors import DatasetError

BAD_SOURCE = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """
)


def _finding(rule="no-wall-clock", path="src/repro/core/x.py", snippet="a = 1"):
    return Finding(
        path=path,
        line=3,
        column=5,
        rule=rule,
        message="m",
        fixit="f",
        snippet=snippet,
    )


def _write_tree(tmp_path, source=BAD_SOURCE):
    target = tmp_path / "src" / "repro" / "core" / "clocked.py"
    target.parent.mkdir(parents=True)
    target.write_text(source, encoding="utf-8")
    return target


class TestLoad:
    def test_missing_file_is_dataset_error(self, tmp_path):
        with pytest.raises(DatasetError, match="does not exist"):
            Baseline.load(tmp_path / "nope.json")

    def test_invalid_json_is_dataset_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("{not json", encoding="utf-8")
        with pytest.raises(DatasetError, match="not valid JSON"):
            Baseline.load(path)

    def test_non_object_document_is_dataset_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text("[]", encoding="utf-8")
        with pytest.raises(DatasetError, match="'entries' list"):
            Baseline.load(path)

    def test_entry_missing_required_key_is_dataset_error(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"version": 1, "entries": [{"rule": "no-wall-clock"}]}),
            encoding="utf-8",
        )
        with pytest.raises(DatasetError, match="missing"):
            Baseline.load(path)

    def test_empty_baseline_loads(self, tmp_path):
        path = tmp_path / "baseline.json"
        path.write_text(
            json.dumps({"version": 1, "entries": []}), encoding="utf-8"
        )
        baseline = Baseline.load(path)
        assert baseline.entries == []


class TestApply:
    def _entry(self, finding, reason="grandfathered"):
        return BaselineEntry(
            rule=finding.rule,
            path=finding.path,
            content=finding.snippet,
            reason=reason,
            line=finding.line,
        )

    def test_matching_entry_absorbs_the_finding(self):
        finding = _finding()
        baseline = Baseline([self._entry(finding)], path="b.json")
        kept, baselined, problems = baseline.apply([finding])
        assert kept == []
        assert baselined == 1
        assert problems == []

    def test_matching_is_by_content_not_line_number(self):
        finding = _finding()
        entry = BaselineEntry(
            rule=finding.rule,
            path=finding.path,
            content=finding.snippet,
            reason="grandfathered",
            line=999,
        )
        kept, baselined, problems = Baseline([entry]).apply([finding])
        assert (kept, baselined, problems) == ([], 1, [])

    def test_stale_entry_fails_the_run(self):
        baseline = Baseline([self._entry(_finding())], path="b.json")
        kept, baselined, problems = baseline.apply([])
        assert kept == []
        assert baselined == 0
        [problem] = problems
        assert problem.rule == STALE_BASELINE_RULE
        assert problem.path == "b.json"
        assert "stale" in problem.message

    def test_reason_less_entry_fails_the_run(self):
        finding = _finding()
        baseline = Baseline([self._entry(finding, reason="  ")], path="b.json")
        kept, baselined, problems = baseline.apply([finding])
        assert baselined == 1  # still absorbs, but the entry itself is flagged
        [problem] = problems
        assert problem.rule == STALE_BASELINE_RULE
        assert "reason" in problem.message

    def test_multiset_budget_one_entry_one_finding(self):
        finding = _finding()
        baseline = Baseline([self._entry(finding)], path="b.json")
        kept, baselined, problems = baseline.apply([finding, finding])
        assert len(kept) == 1
        assert baselined == 1
        assert problems == []


class TestRoundTrip:
    def test_render_load_apply_round_trips(self, tmp_path):
        _write_tree(tmp_path)
        dirty = lint_paths([tmp_path / "src"], root=tmp_path)
        assert [f.rule for f in dirty.findings] == ["no-wall-clock"]

        baseline_path = tmp_path / ".repro-lint-baseline.json"
        baseline_path.write_text(
            render_baseline(dirty.findings, reason="pre-existing, tracked in #1"),
            encoding="utf-8",
        )
        clean = lint_paths(
            [tmp_path / "src"],
            root=tmp_path,
            baseline=Baseline.load(baseline_path),
        )
        assert clean.clean
        assert clean.baselined == 1

    def test_fixed_finding_makes_the_baseline_stale(self, tmp_path):
        target = _write_tree(tmp_path)
        dirty = lint_paths([tmp_path / "src"], root=tmp_path)
        baseline_path = tmp_path / ".repro-lint-baseline.json"
        baseline_path.write_text(
            render_baseline(dirty.findings, reason="pre-existing"),
            encoding="utf-8",
        )
        target.write_text("def stamp(clock):\n    return clock()\n", encoding="utf-8")
        result = lint_paths(
            [tmp_path / "src"],
            root=tmp_path,
            baseline=Baseline.load(baseline_path),
        )
        assert not result.clean
        assert [f.rule for f in result.findings] == [STALE_BASELINE_RULE]
