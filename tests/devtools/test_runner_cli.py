"""Runner pipeline, JSON document shape, CLI exit codes, and the
self-lint gate keeping the tree at zero findings."""

import json
import textwrap
from pathlib import Path

from repro.cli import main
from repro.devtools.baseline import DEFAULT_BASELINE_NAME
from repro.devtools.rules import ALL_RULES, rule_ids
from repro.devtools.runner import known_rule_ids, lint_paths

REPO_ROOT = Path(__file__).resolve().parents[2]

BAD_SOURCE = textwrap.dedent(
    """
    import time

    def stamp():
        return time.time()
    """
)


def _write_tree(tmp_path, source=BAD_SOURCE, name="clocked.py"):
    target = tmp_path / "src" / "repro" / "core" / name
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(source, encoding="utf-8")
    return target


class TestRunner:
    def test_parse_error_is_a_finding_not_a_crash(self, tmp_path):
        _write_tree(tmp_path, source="def broken(:\n")
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        assert [f.rule for f in result.findings] == ["parse-error"]
        assert result.checked_files == 1

    def test_findings_are_sorted_and_paths_repo_relative(self, tmp_path):
        _write_tree(tmp_path, name="b_second.py")
        _write_tree(tmp_path, name="a_first.py")
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        paths = [f.path for f in result.findings]
        assert paths == sorted(paths)
        assert paths[0] == "src/repro/core/a_first.py"

    def test_known_rule_ids_cover_rule_set_and_runner(self):
        ids = known_rule_ids()
        assert set(rule_ids()) <= set(ids)
        assert "parse-error" in ids
        assert len(ids) == len(set(ids))


class TestJsonDocument:
    def test_document_schema(self, tmp_path):
        _write_tree(tmp_path)
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        document = result.to_json()
        assert set(document) == {"version", "rules", "findings", "summary"}
        assert document["version"] == 1
        assert [rule["id"] for rule in document["rules"]] == list(rule_ids())
        for rule in document["rules"]:
            assert set(rule) == {"id", "description", "fixit"}
        [finding] = document["findings"]
        assert set(finding) == {
            "path", "line", "column", "rule", "message", "fixit", "snippet",
        }
        assert document["summary"] == {
            "files": 1, "reported": 1, "suppressed": 0, "baselined": 0,
        }

    def test_text_report_summary_line(self, tmp_path):
        _write_tree(tmp_path)
        result = lint_paths([tmp_path / "src"], root=tmp_path)
        text = result.render_text()
        assert text.endswith("1 finding(s) in 1 file(s) (0 suppressed, 0 baselined)")
        assert "no-wall-clock" in text


class TestCli:
    def test_exit_zero_on_clean_tree(self, tmp_path, capsys):
        _write_tree(tmp_path, source="def ok():\n    return 1\n")
        assert main(["lint", "--root", str(tmp_path)]) == 0
        assert "0 finding(s)" in capsys.readouterr().out

    def test_exit_two_with_findings(self, tmp_path, capsys):
        _write_tree(tmp_path)
        assert main(["lint", "--root", str(tmp_path)]) == 2
        assert "no-wall-clock" in capsys.readouterr().out

    def test_json_format(self, tmp_path, capsys):
        _write_tree(tmp_path)
        assert main(["lint", "--root", str(tmp_path), "--format", "json"]) == 2
        document = json.loads(capsys.readouterr().out)
        assert document["summary"]["reported"] == 1
        assert document["findings"][0]["rule"] == "no-wall-clock"

    def test_missing_path_is_exit_two(self, tmp_path, capsys):
        assert main(["lint", str(tmp_path / "absent"), "--root", str(tmp_path)]) == 2
        assert "do not exist" in capsys.readouterr().err

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule in ALL_RULES:
            assert rule.rule_id in out

    def test_default_baseline_under_root_is_used(self, tmp_path, capsys):
        _write_tree(tmp_path)
        dirty = lint_paths([tmp_path / "src"], root=tmp_path)
        from repro.devtools.baseline import render_baseline

        (tmp_path / DEFAULT_BASELINE_NAME).write_text(
            render_baseline(dirty.findings, reason="grandfathered"),
            encoding="utf-8",
        )
        assert main(["lint", "--root", str(tmp_path)]) == 0
        assert "1 baselined" in capsys.readouterr().out

    def test_no_baseline_flag_reports_everything(self, tmp_path, capsys):
        _write_tree(tmp_path)
        dirty = lint_paths([tmp_path / "src"], root=tmp_path)
        from repro.devtools.baseline import render_baseline

        (tmp_path / DEFAULT_BASELINE_NAME).write_text(
            render_baseline(dirty.findings, reason="grandfathered"),
            encoding="utf-8",
        )
        assert main(["lint", "--root", str(tmp_path), "--no-baseline"]) == 2

    def test_explicit_missing_baseline_is_exit_two(self, tmp_path, capsys):
        _write_tree(tmp_path)
        code = main(
            ["lint", "--root", str(tmp_path), "--baseline", str(tmp_path / "no.json")]
        )
        assert code == 2
        assert "does not exist" in capsys.readouterr().err


class TestSelfLint:
    def test_repo_source_tree_is_lint_clean(self):
        """The acceptance gate: `repro lint` reports zero findings on src/."""
        baseline_path = REPO_ROOT / DEFAULT_BASELINE_NAME
        baseline = None
        if baseline_path.exists():
            from repro.devtools.baseline import Baseline

            baseline = Baseline.load(baseline_path)
        result = lint_paths([REPO_ROOT / "src"], root=REPO_ROOT, baseline=baseline)
        assert result.clean, result.render_text()

    def test_committed_baseline_is_empty(self):
        """The tree is fully paid down; keep it that way."""
        document = json.loads(
            (REPO_ROOT / DEFAULT_BASELINE_NAME).read_text(encoding="utf-8")
        )
        assert document["entries"] == []
