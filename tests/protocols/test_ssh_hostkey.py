"""Tests for host key blobs and fingerprints."""

import pytest

from repro.errors import MalformedMessageError
from repro.protocols.ssh.hostkey import (
    EcdsaHostKey,
    Ed25519HostKey,
    OpaqueHostKey,
    RsaHostKey,
    parse_host_key_blob,
)
from repro.protocols.ssh.wire import SshWriter


class TestEd25519:
    def test_generate_is_deterministic(self):
        assert Ed25519HostKey.generate("router-1") == Ed25519HostKey.generate("router-1")

    def test_different_seeds_differ(self):
        assert Ed25519HostKey.generate("a") != Ed25519HostKey.generate("b")

    def test_blob_roundtrip(self):
        key = Ed25519HostKey.generate("router-2")
        parsed = parse_host_key_blob(key.encode_blob())
        assert isinstance(parsed, Ed25519HostKey)
        assert parsed == key

    def test_wrong_key_length_rejected(self):
        with pytest.raises(MalformedMessageError):
            Ed25519HostKey(public_key=b"\x00" * 16)

    def test_fingerprint_format(self):
        fingerprint = Ed25519HostKey.generate("x").fingerprint()
        assert fingerprint.startswith("SHA256:")
        assert "=" not in fingerprint


class TestRsa:
    def test_generate_modulus_size(self):
        key = RsaHostKey.generate("router-3", bits=2048)
        assert key.modulus.bit_length() == 2048
        assert key.modulus % 2 == 1

    def test_blob_roundtrip(self):
        key = RsaHostKey.generate("router-4")
        parsed = parse_host_key_blob(key.encode_blob())
        assert isinstance(parsed, RsaHostKey)
        assert parsed.exponent == key.exponent
        assert parsed.modulus == key.modulus

    def test_distinct_seeds_distinct_moduli(self):
        assert RsaHostKey.generate("a").modulus != RsaHostKey.generate("b").modulus


class TestEcdsa:
    def test_blob_roundtrip(self):
        key = EcdsaHostKey.generate("router-5")
        parsed = parse_host_key_blob(key.encode_blob())
        assert isinstance(parsed, EcdsaHostKey)
        assert parsed.point == key.point
        assert parsed.curve == "nistp256"

    def test_point_is_uncompressed(self):
        key = EcdsaHostKey.generate("router-6")
        assert key.point[0] == 0x04
        assert len(key.point) == 65


class TestFingerprints:
    def test_fingerprints_unique_across_keys(self):
        keys = [Ed25519HostKey.generate(f"host-{i}") for i in range(50)]
        fingerprints = {key.fingerprint() for key in keys}
        assert len(fingerprints) == 50

    def test_fingerprint_depends_on_blob_only(self):
        key = Ed25519HostKey.generate("stable")
        assert key.fingerprint() == parse_host_key_blob(key.encode_blob()).fingerprint()


class TestOpaque:
    def test_unknown_algorithm_preserved(self):
        writer = SshWriter()
        writer.write_string(b"ssh-dss")
        writer.write_mpint(12345)
        blob = writer.getvalue()
        parsed = parse_host_key_blob(blob)
        assert isinstance(parsed, OpaqueHostKey)
        assert parsed.algorithm == "ssh-dss"
        assert parsed.encode_blob() == blob
