"""Tests for SSH banner parsing and rendering."""

import pytest

from repro.errors import MalformedMessageError
from repro.protocols.ssh.banner import SshBanner


class TestRender:
    def test_basic_render(self):
        banner = SshBanner(softwareversion="OpenSSH_8.9p1")
        assert banner.render() == "SSH-2.0-OpenSSH_8.9p1"

    def test_render_with_comments(self):
        banner = SshBanner(softwareversion="OpenSSH_8.9p1", comments="Ubuntu-3ubuntu0.1")
        assert banner.render() == "SSH-2.0-OpenSSH_8.9p1 Ubuntu-3ubuntu0.1"

    def test_wire_form_ends_with_crlf(self):
        assert SshBanner().render_wire().endswith(b"\r\n")


class TestParse:
    def test_parse_simple(self):
        banner = SshBanner.parse("SSH-2.0-OpenSSH_9.3\r\n")
        assert banner.protoversion == "2.0"
        assert banner.softwareversion == "OpenSSH_9.3"
        assert banner.comments == ""

    def test_parse_with_comments(self):
        banner = SshBanner.parse("SSH-2.0-dropbear_2020.81 some comment here")
        assert banner.softwareversion == "dropbear_2020.81"
        assert banner.comments == "some comment here"

    def test_parse_bytes(self):
        banner = SshBanner.parse(b"SSH-2.0-OpenSSH_8.4p1 Debian-5+deb11u1\r\n")
        assert banner.softwareversion == "OpenSSH_8.4p1"

    def test_roundtrip(self):
        original = SshBanner(softwareversion="libssh_0.9.6", comments="unit test")
        assert SshBanner.parse(original.render()) == original

    def test_legacy_protoversion(self):
        banner = SshBanner.parse("SSH-1.99-Cisco-1.25")
        assert banner.protoversion == "1.99"
        assert banner.softwareversion == "Cisco-1.25"

    def test_not_ssh_rejected(self):
        with pytest.raises(MalformedMessageError):
            SshBanner.parse("HTTP/1.1 200 OK")

    def test_missing_software_version_rejected(self):
        with pytest.raises(MalformedMessageError):
            SshBanner.parse("SSH-2.0-")

    def test_overlong_banner_rejected(self):
        with pytest.raises(MalformedMessageError):
            SshBanner.parse("SSH-2.0-" + "x" * 300)

    def test_non_ascii_bytes_rejected(self):
        with pytest.raises(MalformedMessageError):
            SshBanner.parse("SSH-2.0-Open\xff".encode("latin-1"))
