"""End-to-end tests of the SSH server behaviour and scanning client."""

from repro.net.endpoint import LoopbackConnection
from repro.protocols.ssh.banner import SshBanner
from repro.protocols.ssh.client import SshScanClient
from repro.protocols.ssh.kex import KexInit
from repro.protocols.ssh.messages import KexEcdhReply
from repro.protocols.ssh.server import SshServerBehavior, SshServerConfig, SshServerStyle


def scan(config):
    connection = LoopbackConnection(SshServerBehavior(config))
    return SshScanClient().scan("192.0.2.10", connection)


class TestKexEcdhReply:
    def test_roundtrip(self):
        config = SshServerConfig.generate("device-1")
        reply = KexEcdhReply.for_host_key(config.host_key.encode_blob(), seed="device-1")
        parsed = KexEcdhReply.parse(reply.build())
        assert parsed.host_key_blob == config.host_key.encode_blob()


class TestFullHandshake:
    def test_scan_collects_banner_kex_and_hostkey(self):
        config = SshServerConfig.generate("device-2", banner=SshBanner(softwareversion="OpenSSH_9.0"))
        record = scan(config)
        assert record.success
        assert record.banner == "SSH-2.0-OpenSSH_9.0"
        assert record.kex_init is not None
        assert record.host_key_algorithm == "ssh-ed25519"
        assert record.host_key_fingerprint == config.host_key.fingerprint()
        assert record.has_identifier

    def test_capability_signature_matches_server_config(self):
        config = SshServerConfig.generate("device-3")
        record = scan(config)
        assert record.capability_signature == config.kex_init.capability_signature()

    def test_same_config_two_addresses_same_material(self):
        config = SshServerConfig.generate("device-4")
        record_a = SshScanClient().scan("192.0.2.20", LoopbackConnection(SshServerBehavior(config)))
        record_b = SshScanClient().scan("192.0.2.21", LoopbackConnection(SshServerBehavior(config)))
        assert record_a.host_key_fingerprint == record_b.host_key_fingerprint
        assert record_a.capability_signature == record_b.capability_signature

    def test_distinct_devices_have_distinct_hostkeys(self):
        record_a = scan(SshServerConfig.generate("device-5"))
        record_b = scan(SshServerConfig.generate("device-6"))
        assert record_a.host_key_fingerprint != record_b.host_key_fingerprint


class TestDegradedServers:
    def test_banner_only_server(self):
        config = SshServerConfig.generate("device-7", style=SshServerStyle.BANNER_ONLY)
        record = scan(config)
        assert record.success
        assert record.banner is not None
        assert record.host_key_fingerprint is None
        assert not record.has_identifier

    def test_silent_server(self):
        config = SshServerConfig.generate("device-8", style=SshServerStyle.SILENT)
        record = scan(config)
        assert not record.success
        assert record.banner is None

    def test_custom_kexinit_preserved(self):
        kex = KexInit(
            cookie=b"\x11" * 16,
            kex_algorithms=("diffie-hellman-group14-sha1",),
            server_host_key_algorithms=("ssh-rsa",),
        )
        config = SshServerConfig.generate("device-9", kex_init=kex)
        record = scan(config)
        assert record.kex_init.kex_algorithms == ("diffie-hellman-group14-sha1",)
