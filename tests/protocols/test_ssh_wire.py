"""Tests for RFC 4251 data types and binary packet framing."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MalformedMessageError, TruncatedMessageError
from repro.protocols.ssh.wire import (
    SshReader,
    SshWriter,
    frame_packet,
    iter_packets,
    unframe_packet,
)


class TestPrimitiveTypes:
    def test_byte_roundtrip(self):
        data = SshWriter().write_byte(20).getvalue()
        assert SshReader(data).read_byte() == 20

    def test_boolean_roundtrip(self):
        data = SshWriter().write_boolean(True).write_boolean(False).getvalue()
        reader = SshReader(data)
        assert reader.read_boolean() is True
        assert reader.read_boolean() is False

    def test_uint32_roundtrip(self):
        data = SshWriter().write_uint32(0xDEADBEEF).getvalue()
        assert SshReader(data).read_uint32() == 0xDEADBEEF

    def test_string_roundtrip(self):
        data = SshWriter().write_string(b"ssh-ed25519").getvalue()
        assert SshReader(data).read_string() == b"ssh-ed25519"

    def test_name_list_roundtrip(self):
        names = ["curve25519-sha256", "ecdh-sha2-nistp256"]
        data = SshWriter().write_name_list(names).getvalue()
        assert SshReader(data).read_name_list() == names

    def test_empty_name_list(self):
        data = SshWriter().write_name_list([]).getvalue()
        assert SshReader(data).read_name_list() == []

    def test_mpint_zero(self):
        data = SshWriter().write_mpint(0).getvalue()
        assert SshReader(data).read_mpint() == 0

    def test_mpint_high_bit_gets_leading_zero(self):
        data = SshWriter().write_mpint(0x80).getvalue()
        # string length 2: 0x00 0x80
        assert data == b"\x00\x00\x00\x02\x00\x80"
        assert SshReader(data).read_mpint() == 0x80

    def test_negative_mpint_rejected(self):
        with pytest.raises(MalformedMessageError):
            SshWriter().write_mpint(-5)

    def test_truncated_read_raises(self):
        with pytest.raises(TruncatedMessageError):
            SshReader(b"\x00\x00\x00\x08abc").read_string()

    def test_non_ascii_name_list_rejected(self):
        data = SshWriter().write_string("café".encode("utf-8")).getvalue()
        with pytest.raises(MalformedMessageError):
            SshReader(data).read_name_list()


class TestPacketFraming:
    def test_roundtrip(self):
        payload = b"\x14" + b"x" * 37
        packet = frame_packet(payload)
        recovered, rest = unframe_packet(packet)
        assert recovered == payload
        assert rest == b""

    def test_total_length_is_multiple_of_block(self):
        for size in range(0, 64):
            packet = frame_packet(b"a" * size)
            assert len(packet) % 8 == 0

    def test_minimum_padding(self):
        packet = frame_packet(b"abc")
        padding_length = packet[4]
        assert padding_length >= 4

    def test_multiple_packets_iterated_in_order(self):
        stream = frame_packet(b"first") + frame_packet(b"second") + frame_packet(b"third")
        assert list(iter_packets(stream)) == [b"first", b"second", b"third"]

    def test_truncated_packet_raises(self):
        packet = frame_packet(b"payload")
        with pytest.raises(TruncatedMessageError):
            unframe_packet(packet[: len(packet) - 3])

    def test_iter_packets_stops_at_truncation(self):
        stream = frame_packet(b"whole") + frame_packet(b"partial")[:-3]
        assert list(iter_packets(stream)) == [b"whole"]

    def test_inconsistent_lengths_raise(self):
        # packet_length (1) smaller than padding_length (4) + 1
        bogus = b"\x00\x00\x00\x01\x04" + b"\x00" * 8
        with pytest.raises(MalformedMessageError):
            unframe_packet(bogus)


@given(st.binary(min_size=0, max_size=512))
def test_frame_roundtrip_property(payload):
    recovered, rest = unframe_packet(frame_packet(payload))
    assert recovered == payload
    assert rest == b""


@given(st.lists(st.binary(min_size=0, max_size=64), min_size=0, max_size=8))
def test_iter_packets_property(payloads):
    stream = b"".join(frame_packet(payload) for payload in payloads)
    assert list(iter_packets(stream)) == payloads


@given(st.integers(min_value=0, max_value=2**1024))
def test_mpint_roundtrip_property(value):
    data = SshWriter().write_mpint(value).getvalue()
    assert SshReader(data).read_mpint() == value
