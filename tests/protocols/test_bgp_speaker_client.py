"""End-to-end tests of the BGP speaker behaviour and scanning client."""

from repro.net.endpoint import LoopbackConnection
from repro.protocols.bgp.client import BgpScanClient
from repro.protocols.bgp.messages import AS_TRANS, BgpErrorCode, CeaseSubcode
from repro.protocols.bgp.speaker import BgpSpeakerBehavior, BgpSpeakerConfig, BgpSpeakerStyle


def scan(config):
    connection = LoopbackConnection(BgpSpeakerBehavior(config))
    return BgpScanClient().scan("198.51.100.1", connection)


class TestOpenThenNotify:
    def test_open_and_notification_received(self):
        config = BgpSpeakerConfig(asn=3320, bgp_identifier="193.0.0.1")
        record = scan(config)
        assert record.success
        assert record.has_identifier
        assert record.open_message.bgp_identifier == "193.0.0.1"
        assert record.open_message.effective_asn == 3320
        assert record.notification is not None
        assert record.notification.error_code == BgpErrorCode.CEASE
        assert record.notification.error_subcode == CeaseSubcode.CONNECTION_REJECTED

    def test_four_byte_asn_uses_as_trans(self):
        config = BgpSpeakerConfig(asn=396982, bgp_identifier="8.8.8.8")
        record = scan(config)
        assert record.open_message.my_as == AS_TRANS
        assert record.open_message.effective_asn == 396982

    def test_same_config_on_two_addresses_same_identifier_fields(self):
        config = BgpSpeakerConfig(asn=701, bgp_identifier="137.0.0.1", hold_time=180)
        record_a = BgpScanClient().scan("203.0.113.1", LoopbackConnection(BgpSpeakerBehavior(config)))
        record_b = BgpScanClient().scan("203.0.113.2", LoopbackConnection(BgpSpeakerBehavior(config)))
        assert record_a.open_message == record_b.open_message


class TestOtherStyles:
    def test_close_immediately(self):
        config = BgpSpeakerConfig(style=BgpSpeakerStyle.CLOSE_IMMEDIATELY)
        record = scan(config)
        assert record.success
        assert not record.has_identifier
        assert record.closed_immediately

    def test_silent_speaker(self):
        config = BgpSpeakerConfig(style=BgpSpeakerStyle.SILENT)
        record = scan(config)
        assert record.success
        assert not record.has_identifier
        assert not record.closed_immediately

    def test_speaker_ignores_client_data(self):
        behavior = BgpSpeakerBehavior(BgpSpeakerConfig())
        behavior.on_connect()
        assert behavior.on_data(b"\x00" * 19) == b""
