"""Tests for BGP message wire formats."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MalformedMessageError, TruncatedMessageError
from repro.protocols.bgp.capabilities import Capability
from repro.protocols.bgp.messages import (
    AS_TRANS,
    BgpErrorCode,
    BgpKeepalive,
    BgpNotification,
    BgpOpen,
    CeaseSubcode,
    parse_message,
    parse_messages,
)


class TestOpen:
    def test_roundtrip(self):
        original = BgpOpen(
            my_as=3320,
            hold_time=180,
            bgp_identifier="148.170.0.33",
            capabilities=(Capability.route_refresh_cisco(), Capability.route_refresh()),
        )
        parsed, rest = parse_message(original.build())
        assert parsed == original
        assert rest == b""

    def test_header_layout(self):
        wire = BgpOpen(bgp_identifier="10.0.0.1").build()
        assert wire[:16] == b"\xff" * 16
        assert wire[18] == 1  # type OPEN
        length = int.from_bytes(wire[16:18], "big")
        assert length == len(wire)

    def test_paper_example_length(self):
        # The paper's Figure 2 OPEN: 2 capabilities, each 2 bytes of value-less
        # capability wrapped in its own optional parameter => length 37.
        message = BgpOpen(
            my_as=AS_TRANS,
            hold_time=90,
            bgp_identifier="148.170.0.33",
            capabilities=(Capability.route_refresh_cisco(), Capability.route_refresh()),
        )
        assert message.message_length == 37

    def test_effective_asn_prefers_four_octet_capability(self):
        message = BgpOpen(my_as=AS_TRANS, capabilities=(Capability.four_octet_as(396982),))
        assert message.effective_asn == 396982

    def test_effective_asn_falls_back_to_my_as(self):
        assert BgpOpen(my_as=64512).effective_asn == 64512

    def test_truncated_open_raises(self):
        wire = BgpOpen().build()
        with pytest.raises(TruncatedMessageError):
            parse_message(wire[: len(wire) - 1])


class TestNotification:
    def test_roundtrip_connection_rejected(self):
        original = BgpNotification()
        parsed, _ = parse_message(original.build())
        assert parsed.error_code == BgpErrorCode.CEASE
        assert parsed.error_subcode == CeaseSubcode.CONNECTION_REJECTED

    def test_roundtrip_with_data(self):
        original = BgpNotification(error_code=2, error_subcode=7, data=b"\x01\x02")
        parsed, _ = parse_message(original.build())
        assert parsed == original


class TestKeepalive:
    def test_roundtrip(self):
        parsed, rest = parse_message(BgpKeepalive().build())
        assert parsed == BgpKeepalive()
        assert rest == b""

    def test_length_is_19(self):
        assert len(BgpKeepalive().build()) == 19


class TestStreamParsing:
    def test_open_then_notification(self):
        stream = BgpOpen(bgp_identifier="10.1.1.1").build() + BgpNotification().build()
        messages = parse_messages(stream)
        assert len(messages) == 2
        assert isinstance(messages[0], BgpOpen)
        assert isinstance(messages[1], BgpNotification)

    def test_bad_marker_raises(self):
        wire = bytearray(BgpOpen().build())
        wire[0] = 0x00
        with pytest.raises(MalformedMessageError):
            parse_message(bytes(wire))

    def test_implausible_length_raises(self):
        wire = b"\xff" * 16 + (10).to_bytes(2, "big") + b"\x01"
        with pytest.raises(MalformedMessageError):
            parse_message(wire)

    def test_unknown_type_raises(self):
        wire = b"\xff" * 16 + (19).to_bytes(2, "big") + b"\x07"
        with pytest.raises(MalformedMessageError):
            parse_message(wire)

    def test_parse_messages_ignores_trailing_garbage(self):
        stream = BgpOpen().build() + b"\xff\xff"
        assert len(parse_messages(stream)) == 1

    def test_empty_stream(self):
        assert parse_messages(b"") == []


@given(
    asn=st.integers(min_value=1, max_value=0xFFFF),
    hold_time=st.integers(min_value=0, max_value=0xFFFF),
    identifier=st.integers(min_value=0, max_value=2**32 - 1),
)
def test_open_roundtrip_property(asn, hold_time, identifier):
    import ipaddress

    original = BgpOpen(
        my_as=asn,
        hold_time=hold_time,
        bgp_identifier=str(ipaddress.IPv4Address(identifier)),
    )
    parsed, rest = parse_message(original.build())
    assert parsed == original
    assert rest == b""
