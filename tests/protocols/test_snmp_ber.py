"""Tests for the minimal BER codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MalformedMessageError, TruncatedMessageError
from repro.protocols.snmp import ber


class TestInteger:
    def test_zero(self):
        assert ber.encode_integer(0) == b"\x02\x01\x00"
        assert ber.decode_exact(ber.encode_integer(0)).value == 0

    def test_positive_roundtrip(self):
        for value in (1, 127, 128, 255, 256, 65535, 2**31 - 1):
            assert ber.decode_exact(ber.encode_integer(value)).value == value

    def test_negative_roundtrip(self):
        for value in (-1, -128, -129, -65536):
            assert ber.decode_exact(ber.encode_integer(value)).value == value

    def test_minimal_encoding_of_127_and_128(self):
        assert ber.encode_integer(127) == b"\x02\x01\x7f"
        assert ber.encode_integer(128) == b"\x02\x02\x00\x80"


class TestOctetStringAndNull:
    def test_octet_string_roundtrip(self):
        assert ber.decode_exact(ber.encode_octet_string(b"engine-id")).value == b"engine-id"

    def test_empty_octet_string(self):
        assert ber.decode_exact(ber.encode_octet_string(b"")).value == b""

    def test_null(self):
        value = ber.decode_exact(ber.encode_null())
        assert value.tag == ber.TAG_NULL
        assert value.value is None

    def test_long_form_length(self):
        payload = b"x" * 300
        encoded = ber.encode_octet_string(payload)
        assert ber.decode_exact(encoded).value == payload


class TestOid:
    def test_usm_stats_oid_roundtrip(self):
        oid = (1, 3, 6, 1, 6, 3, 15, 1, 1, 4, 0)
        assert ber.decode_exact(ber.encode_oid(oid)).value == oid

    def test_large_component(self):
        oid = (1, 3, 6, 1, 4, 1, 2636, 3, 1)
        assert ber.decode_exact(ber.encode_oid(oid)).value == oid

    def test_too_short_oid_rejected(self):
        with pytest.raises(MalformedMessageError):
            ber.encode_oid((1,))


class TestSequence:
    def test_nested_sequence(self):
        inner = ber.encode_sequence(ber.encode_integer(3), ber.encode_octet_string(b"abc"))
        outer = ber.encode_sequence(inner, ber.encode_null())
        decoded = ber.decode_exact(outer)
        assert decoded.is_constructed
        assert len(decoded.value) == 2
        assert decoded.value[0].value[0].value == 3
        assert decoded.value[0].value[1].value == b"abc"

    def test_context_constructed_tag(self):
        pdu = ber.encode_sequence(ber.encode_integer(7), tag=0xA8)
        decoded = ber.decode_exact(pdu)
        assert decoded.tag == 0xA8
        assert decoded.value[0].value == 7


class TestErrors:
    def test_truncated_content_raises(self):
        encoded = ber.encode_octet_string(b"abcdef")
        with pytest.raises(TruncatedMessageError):
            ber.decode(encoded[:-2])

    def test_trailing_bytes_rejected_by_decode_exact(self):
        with pytest.raises(MalformedMessageError):
            ber.decode_exact(ber.encode_null() + b"\x00")

    def test_null_with_content_rejected(self):
        with pytest.raises(MalformedMessageError):
            ber.decode(b"\x05\x01\x00")


@given(st.integers(min_value=-(2**63), max_value=2**63 - 1))
def test_integer_roundtrip_property(value):
    assert ber.decode_exact(ber.encode_integer(value)).value == value


@given(st.binary(max_size=600))
def test_octet_string_roundtrip_property(value):
    assert ber.decode_exact(ber.encode_octet_string(value)).value == value


@given(st.lists(st.integers(min_value=0, max_value=2**20), min_size=0, max_size=8))
def test_oid_roundtrip_property(tail):
    oid = (1, 3) + tuple(tail)
    assert ber.decode_exact(ber.encode_oid(oid)).value == oid
