"""Tests for SSH_MSG_KEXINIT build/parse and the capability signature."""

import dataclasses

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MalformedMessageError
from repro.protocols.ssh.kex import SSH_MSG_KEXINIT, KexInit

algorithm_names = st.lists(
    st.text(alphabet="abcdefghijklmnopqrstuvwxyz0123456789-@.", min_size=1, max_size=30),
    min_size=0,
    max_size=6,
).map(tuple)


class TestBuildParse:
    def test_roundtrip_defaults(self):
        original = KexInit(cookie=bytes(range(16)))
        assert KexInit.parse(original.build()) == original

    def test_message_code_is_kexinit(self):
        assert KexInit().build()[0] == SSH_MSG_KEXINIT

    def test_roundtrip_custom_lists(self):
        original = KexInit(
            cookie=b"\xaa" * 16,
            kex_algorithms=("diffie-hellman-group1-sha1",),
            server_host_key_algorithms=("ssh-rsa", "ssh-dss"),
            languages_client_to_server=("en-US",),
        )
        assert KexInit.parse(original.build()) == original

    def test_wrong_cookie_length_rejected(self):
        with pytest.raises(MalformedMessageError):
            KexInit(cookie=b"short")

    def test_parse_rejects_other_message_codes(self):
        payload = bytes([21]) + b"\x00" * 40
        with pytest.raises(MalformedMessageError):
            KexInit.parse(payload)


class TestCapabilitySignature:
    def test_signature_ignores_cookie(self):
        a = KexInit(cookie=b"\x01" * 16)
        b = KexInit(cookie=b"\x02" * 16)
        assert a.capability_signature() == b.capability_signature()

    def test_signature_changes_with_algorithm_set(self):
        a = KexInit()
        b = dataclasses.replace(a, kex_algorithms=("diffie-hellman-group14-sha256",))
        assert a.capability_signature() != b.capability_signature()

    def test_signature_sensitive_to_preference_order(self):
        a = KexInit(kex_algorithms=("curve25519-sha256", "ecdh-sha2-nistp256"))
        b = KexInit(kex_algorithms=("ecdh-sha2-nistp256", "curve25519-sha256"))
        assert a.capability_signature() != b.capability_signature()

    def test_signature_distinguishes_adjacent_lists(self):
        # Moving a name from one list to the next must not collide.
        a = KexInit(kex_algorithms=("x", "y"), server_host_key_algorithms=())
        b = KexInit(kex_algorithms=("x",), server_host_key_algorithms=("y",))
        assert a.capability_signature() != b.capability_signature()


@given(kex=algorithm_names, hostkeys=algorithm_names, ciphers=algorithm_names)
def test_kexinit_roundtrip_property(kex, hostkeys, ciphers):
    original = KexInit(
        cookie=b"\x42" * 16,
        kex_algorithms=kex,
        server_host_key_algorithms=hostkeys,
        encryption_algorithms_client_to_server=ciphers,
        encryption_algorithms_server_to_client=ciphers,
    )
    parsed = KexInit.parse(original.build())
    assert parsed == original
    assert parsed.capability_signature() == original.capability_signature()
