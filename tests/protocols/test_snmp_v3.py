"""Tests for SNMPv3 message building/parsing and the discovery exchange."""

from repro.net.endpoint import LoopbackConnection
from repro.protocols.snmp.client import SnmpScanClient
from repro.protocols.snmp.engine import SnmpEngineBehavior, SnmpEngineConfig
from repro.protocols.snmp.engine_id import EngineId
from repro.protocols.snmp.v3 import (
    MSG_FLAG_REPORTABLE,
    PDU_GET_REQUEST,
    PDU_REPORT,
    USM_STATS_UNKNOWN_ENGINE_IDS,
    SnmpV3Message,
    UsmSecurityParameters,
    build_discovery_report,
    build_discovery_request,
)


class TestUsmParameters:
    def test_roundtrip(self):
        original = UsmSecurityParameters(
            engine_id=b"\x80\x00\x1f\x88\x03\x01\x02\x03\x04\x05\x06",
            engine_boots=12,
            engine_time=345678,
            user_name=b"",
        )
        assert UsmSecurityParameters.parse(original.encode()) == original

    def test_empty_parameters(self):
        original = UsmSecurityParameters()
        parsed = UsmSecurityParameters.parse(original.encode())
        assert parsed.engine_id == b""
        assert parsed.engine_boots == 0


class TestDiscoveryMessages:
    def test_request_is_reportable_get(self):
        request = SnmpV3Message.parse(build_discovery_request(msg_id=42))
        assert request.msg_id == 42
        assert request.pdu_type == PDU_GET_REQUEST
        assert request.msg_flags & MSG_FLAG_REPORTABLE
        assert request.security_parameters.engine_id == b""

    def test_report_carries_engine_id_and_counters(self):
        engine_id = EngineId.generate("agent-1")
        report = SnmpV3Message.parse(
            build_discovery_report(msg_id=42, engine_id=engine_id, engine_boots=7, engine_time=1234)
        )
        assert report.pdu_type == PDU_REPORT
        assert report.security_parameters.engine_id == engine_id.encode()
        assert report.security_parameters.engine_boots == 7
        assert report.security_parameters.engine_time == 1234
        assert report.varbinds[0][0] == USM_STATS_UNKNOWN_ENGINE_IDS
        assert report.varbinds[0][1] == 1

    def test_message_roundtrip_with_varbinds(self):
        message = SnmpV3Message(
            msg_id=9,
            pdu_type=PDU_REPORT,
            request_id=9,
            varbinds=((USM_STATS_UNKNOWN_ENGINE_IDS, 5),),
        )
        parsed = SnmpV3Message.parse(message.encode())
        assert parsed.msg_id == 9
        assert parsed.varbinds == ((USM_STATS_UNKNOWN_ENGINE_IDS, 5),)


class TestDiscoveryExchange:
    def test_client_extracts_engine_identifier(self):
        config = SnmpEngineConfig.generate("device-42")
        record = SnmpScanClient().scan("192.0.2.5", LoopbackConnection(SnmpEngineBehavior(config)))
        assert record.success
        assert record.has_identifier
        assert record.engine_id_hex == config.engine_id.hex()
        assert record.engine_boots == config.engine_boots
        assert record.engine_id == config.engine_id

    def test_same_config_two_addresses_same_engine_id(self):
        config = SnmpEngineConfig.generate("device-43")
        record_a = SnmpScanClient().scan("192.0.2.6", LoopbackConnection(SnmpEngineBehavior(config)))
        record_b = SnmpScanClient().scan("192.0.2.7", LoopbackConnection(SnmpEngineBehavior(config)))
        assert record_a.engine_id_hex == record_b.engine_id_hex

    def test_non_responding_agent(self):
        config = SnmpEngineConfig(engine_id=EngineId.generate("device-44"), responds=False)
        record = SnmpScanClient().scan("192.0.2.8", LoopbackConnection(SnmpEngineBehavior(config)))
        assert not record.success
        assert not record.has_identifier

    def test_engine_time_advances_with_clock(self):
        config = SnmpEngineConfig.generate("device-45")
        early = SnmpScanClient().scan("192.0.2.9", LoopbackConnection(SnmpEngineBehavior(config, now=0.0)))
        late = SnmpScanClient().scan("192.0.2.9", LoopbackConnection(SnmpEngineBehavior(config, now=600.0)))
        assert late.engine_time - early.engine_time == 600

    def test_garbage_request_ignored_by_engine(self):
        behavior = SnmpEngineBehavior(SnmpEngineConfig.generate("device-46"))
        assert behavior.on_data(b"not-ber-at-all") == b""
