"""Tests for SNMP engine ID formats."""

import pytest

from repro.errors import MalformedMessageError
from repro.protocols.snmp.engine_id import (
    ENTERPRISE_CISCO,
    ENTERPRISE_NETSNMP,
    EngineId,
    EngineIdFormat,
)


class TestEncodeParse:
    def test_mac_roundtrip(self):
        original = EngineId.from_mac(ENTERPRISE_CISCO, bytes.fromhex("0050569a1b2c"))
        parsed = EngineId.parse(original.encode())
        assert parsed == original

    def test_ipv4_roundtrip(self):
        original = EngineId.from_ipv4(ENTERPRISE_NETSNMP, "192.0.2.33")
        parsed = EngineId.parse(original.encode())
        assert parsed.id_format is EngineIdFormat.IPV4
        assert parsed.data == bytes([192, 0, 2, 33])

    def test_text_roundtrip(self):
        original = EngineId.from_text(ENTERPRISE_NETSNMP, "core-router-01")
        parsed = EngineId.parse(original.encode())
        assert parsed.id_format is EngineIdFormat.TEXT
        assert parsed.data == b"core-router-01"

    def test_high_bit_set_in_encoding(self):
        encoded = EngineId.generate("seed").encode()
        assert encoded[0] & 0x80

    def test_legacy_engine_id_without_high_bit(self):
        raw = (9).to_bytes(4, "big") + b"\x01\x02\x03\x04\x05"
        parsed = EngineId.parse(raw)
        assert parsed.enterprise == 9
        assert parsed.id_format is EngineIdFormat.OCTETS

    def test_wrong_mac_length_rejected(self):
        with pytest.raises(MalformedMessageError):
            EngineId.from_mac(9, b"\x00" * 4)

    def test_out_of_range_length_rejected(self):
        with pytest.raises(MalformedMessageError):
            EngineId.parse(b"\x80\x00\x00\x09")
        with pytest.raises(MalformedMessageError):
            EngineId.parse(b"\x80\x00\x00\x09" + b"\x00" * 40)


class TestGenerate:
    def test_deterministic(self):
        assert EngineId.generate("router-a") == EngineId.generate("router-a")

    def test_distinct_seeds_distinct_ids(self):
        ids = {EngineId.generate(f"device-{i}").hex() for i in range(100)}
        assert len(ids) == 100

    def test_hex_matches_encode(self):
        engine_id = EngineId.generate("x")
        assert bytes.fromhex(engine_id.hex()) == engine_id.encode()
