"""Tests for BGP capability encoding (RFC 5492)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import MalformedMessageError, TruncatedMessageError
from repro.protocols.bgp.capabilities import (
    Capability,
    CapabilityCode,
    encode_optional_parameters,
    parse_optional_parameters,
)


class TestCapabilities:
    def test_route_refresh_roundtrip(self):
        encoded = encode_optional_parameters([Capability.route_refresh()])
        parsed = parse_optional_parameters(encoded)
        assert parsed == [Capability(code=CapabilityCode.ROUTE_REFRESH, value=b"")]

    def test_multiple_capabilities_preserved_in_order(self):
        capabilities = [
            Capability.route_refresh_cisco(),
            Capability.route_refresh(),
            Capability.multiprotocol(afi=1, safi=1),
        ]
        parsed = parse_optional_parameters(encode_optional_parameters(capabilities))
        assert [c.code for c in parsed] == [128, 2, 1]

    def test_multiprotocol_value_layout(self):
        capability = Capability.multiprotocol(afi=2, safi=1)
        assert capability.value == b"\x00\x02\x00\x01"

    def test_four_octet_as_roundtrip(self):
        capability = Capability.four_octet_as(396982)
        parsed = parse_optional_parameters(encode_optional_parameters([capability]))
        assert parsed[0].four_octet_asn == 396982

    def test_four_octet_asn_none_for_other_codes(self):
        assert Capability.route_refresh().four_octet_asn is None

    def test_overlong_value_rejected(self):
        with pytest.raises(MalformedMessageError):
            Capability(code=1, value=b"\x00" * 256).encode()

    def test_non_capability_parameters_skipped(self):
        # Parameter type 1 (authentication, deprecated) must be ignored.
        blob = bytes([1, 2, 0xAA, 0xBB]) + encode_optional_parameters([Capability.route_refresh()])
        parsed = parse_optional_parameters(blob)
        assert len(parsed) == 1

    def test_truncated_parameter_raises(self):
        encoded = encode_optional_parameters([Capability.four_octet_as(65000)])
        with pytest.raises(TruncatedMessageError):
            parse_optional_parameters(encoded[:-2])

    def test_empty_blob_parses_to_empty_list(self):
        assert parse_optional_parameters(b"") == []


@given(
    st.lists(
        st.tuples(st.integers(min_value=0, max_value=255), st.binary(max_size=16)),
        max_size=5,
    )
)
def test_capability_roundtrip_property(raw):
    capabilities = [Capability(code=code, value=value) for code, value in raw]
    parsed = parse_optional_parameters(encode_optional_parameters(capabilities))
    assert parsed == capabilities
