"""Hypothesis property tests for the probe-budget optimizer.

Two invariants the optimizer's docstrings promise:

* **Staleness honesty** — a re-validation whose gap since the banked
  collections is within the velocity-cache ttl re-scores with zero fresh
  probes and byte-identical decisions; a gap beyond the ttl always goes
  back to the network (an expired entry is never silently reused).
* **Scheduler determinism** — the same candidates under the same budget
  produce the same spend order (the per-set outcome sequence, probes and
  all) and the same verdicts on every run; nothing in the priority
  scheduler depends on iteration order, hashing, or wall clock.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.ipid import MonotonicIpidCounter, RandomIpidCounter
from repro.simnet.asn import AsRegistry, AsRole, AutonomousSystem
from repro.simnet.device import Device, DeviceRole, Interface
from repro.simnet.network import SimulatedInternet, VantagePoint
from repro.validation.budget import ProbeBudgetOptimizer
from repro.validation.runner import ValidationRun, run_validator
from repro.validation.spec import midar

VP_PARAMS = dict(vantage_name="budget-prop", vantage_address="192.0.2.77")

#: Every probe-responsive address of the property network, grouped by device.
DEVICE_ADDRESSES = {
    "shared": ("10.1.0.1", "10.1.0.2", "10.1.0.3"),
    "shared-2": ("10.2.0.1", "10.2.0.2"),
    "random": ("10.3.0.1", "10.3.0.2"),
}
ALL_ADDRESSES = tuple(
    address for addresses in DEVICE_ADDRESSES.values() for address in addresses
)


def build_network():
    registry = AsRegistry()
    registry.add(AutonomousSystem(asn=200, name="ISP", role=AsRole.ISP))
    devices = [
        Device(
            device_id="shared",
            role=DeviceRole.CORE_ROUTER,
            home_asn=200,
            interfaces=[
                Interface(name=f"i{i}", address=address, asn=200)
                for i, address in enumerate(DEVICE_ADDRESSES["shared"])
            ],
            ipid_counter=MonotonicIpidCounter(start=500, velocity=5.0, jitter=0),
        ),
        Device(
            device_id="shared-2",
            role=DeviceRole.CORE_ROUTER,
            home_asn=200,
            interfaces=[
                Interface(name=f"i{i}", address=address, asn=200)
                for i, address in enumerate(DEVICE_ADDRESSES["shared-2"])
            ],
            ipid_counter=MonotonicIpidCounter(start=30000, velocity=5.0, jitter=0),
        ),
        Device(
            device_id="random",
            role=DeviceRole.SERVER,
            home_asn=200,
            interfaces=[
                Interface(name=f"i{i}", address=address, asn=200)
                for i, address in enumerate(DEVICE_ADDRESSES["random"])
            ],
            ipid_counter=RandomIpidCounter(rng=random.Random(7)),
        ),
    ]
    return SimulatedInternet(registry=registry, devices=devices, seed=1, loss_rate=0.0)


def _count_probes(network):
    counter = {"probes": 0}
    original = network.sample_ipid

    def counting(address, vantage, now=0.0):
        counter["probes"] += 1
        return original(address, vantage, now=now)

    network.sample_ipid = counting
    return counter


def _decisions(report):
    return [(v.candidate, v.testable, v.agrees, v.partition) for v in report.verdicts]


candidate_sets = st.lists(
    st.frozensets(st.sampled_from(ALL_ADDRESSES), min_size=2, max_size=4),
    min_size=1,
    max_size=4,
    unique=True,
).map(tuple)


@given(
    ttl=st.floats(min_value=500.0, max_value=1e5, allow_nan=False),
    fraction=st.floats(min_value=0.0, max_value=1.0, allow_nan=False),
    within=st.booleans(),
)
@settings(max_examples=25, deadline=None)
def test_staleness_bound_is_honest(ttl, fraction, within):
    """Within the ttl: free, identical re-score.  Beyond it: live re-probe.

    Freshness is judged per collection against *its* collection time, so
    "within" means the whole first run plus the gap fits inside the ttl
    (the minimum ttl above exceeds any first-run duration here), and
    "beyond" puts the gap past the ttl of even the first run's last
    collection.
    """
    spec = midar(**VP_PARAMS)
    candidates = (frozenset(DEVICE_ADDRESSES["shared"]),)
    network = build_network()
    run = ValidationRun(network)
    run.optimizer = ProbeBudgetOptimizer(velocity_ttl=ttl)
    first = run_validator(run, spec, candidates=candidates, start_time=0.0)
    assert first.finished_at < 500.0, "property network outgrew the minimum ttl"
    counter = _count_probes(network)
    if within:
        gap = (ttl - first.finished_at) * fraction
    else:
        # Past the ttl even for the last collection of the first run.
        gap = ttl + first.finished_at + 1.0 + fraction * ttl
    second = run_validator(run, spec, candidates=candidates, start_time=gap)
    if within:
        assert counter["probes"] == 0, "a fresh entry must re-score without probing"
        assert _decisions(second) == _decisions(first)
    else:
        assert counter["probes"] > 0, "an expired entry must never be silently reused"


@given(candidates=candidate_sets, budget=st.one_of(st.none(), st.integers(min_value=0, max_value=150)))
@settings(max_examples=25, deadline=None)
def test_scheduler_is_deterministic(candidates, budget):
    """Same candidates + same budget -> same spend order, same verdicts."""
    spec = midar(**VP_PARAMS)

    def one_run():
        run = ValidationRun(build_network())
        run.optimizer = ProbeBudgetOptimizer(budget=budget)
        report = run_validator(run, spec, candidates=candidates, start_time=0.0)
        return run.optimizer, report

    first_optimizer, first_report = one_run()
    second_optimizer, second_report = one_run()
    assert first_optimizer.outcomes == second_optimizer.outcomes
    assert _decisions(first_report) == _decisions(second_report)
    assert first_optimizer.budget.spent == second_optimizer.budget.spent
    assert first_optimizer.budget.closed == second_optimizer.budget.closed
