"""Tests for the probe-budget optimizer.

Parity on the controlled network is the core contract: attaching a
:class:`~repro.validation.budget.ProbeBudgetOptimizer` with no cap must
reproduce every decision (testable, agrees, partition) of the plain
pipelines while issuing strictly fewer probes, and a capped run must mark
unaffordable sets unresolved without flipping any resolved verdict.
"""

import pytest

from repro import obs
from repro.errors import ValidationError
from repro.validation.budget import (
    DEFAULT_VELOCITY_TTL,
    ProbeBudget,
    ProbeBudgetExhausted,
    ProbeBudgetOptimizer,
    VelocityCache,
    consensus_breakdown,
    consensus_report,
    is_unresolved,
    run_budgeted,
    unresolved_verdict,
)
from repro.validation.runner import ValidationRun, run_validator
from repro.validation.spec import ally, consensus, iffinder, midar, speedtrap
from repro.validation.techniques import MidarConfig

TRUE_SET = frozenset({"10.0.1.1", "10.0.1.2", "10.0.1.3"})
FALSE_SET = frozenset({"10.0.1.1", "10.0.2.1"})
RANDOM_SET = frozenset({"10.0.4.1", "10.0.4.2"})
V6_TRUE_SET = frozenset({"2001:db80::11", "2001:db80::12"})
CANDIDATES = (TRUE_SET, FALSE_SET, RANDOM_SET)


def _spec_vantage(spec_fn, **params):
    return spec_fn(vantage_name="validation-test", vantage_address="192.0.2.9", **params)


def _decisions(report):
    return [
        (v.candidate, v.testable, v.agrees, v.partition) for v in report.verdicts
    ]


class TestProbeBudget:
    def test_unlimited_grants_and_tracks_spend(self):
        budget = ProbeBudget()
        assert budget.request(10_000)
        budget.charge(10_000)
        assert budget.spent == 10_000
        assert budget.remaining is None
        assert not budget.closed

    def test_denial_closes_the_budget(self):
        budget = ProbeBudget(limit=10)
        assert budget.request(8)
        budget.charge(8)
        assert not budget.request(3)  # would overrun
        assert budget.closed
        assert not budget.request(1)  # affordable, but the budget is closed
        assert budget.remaining == 2

    def test_negative_limit_rejected(self):
        with pytest.raises(ValidationError, match="negative"):
            ProbeBudget(limit=-1)

    def test_zero_limit_denies_everything(self):
        budget = ProbeBudget(limit=0)
        assert not budget.request(1)
        assert budget.closed


class TestVelocityCache:
    CONFIG = MidarConfig()

    def test_rejects_nonpositive_ttl(self):
        with pytest.raises(ValidationError, match="ttl"):
            VelocityCache(ttl=0.0)

    def _classify(self, cache, network, vantage, observed_at=0.0):
        from repro.validation.bank import IpidSampleBank

        bank = IpidSampleBank(network, vantage)
        series, collected_at, _ = bank.estimation_series(
            "10.0.1.1",
            self.CONFIG.estimation_samples,
            self.CONFIG.estimation_interval,
            observed_at,
        )
        return cache.classify("10.0.1.1", series, collected_at, self.CONFIG)

    def test_classify_memoised_on_same_collection(self, network, vantage):
        cache = VelocityCache(ttl=100.0)
        first = self._classify(cache, network, vantage)
        second = self._classify(cache, network, vantage)
        assert second is first
        assert cache.misses == 1
        assert cache.hits == 1

    def test_fresh_within_ttl_expired_beyond(self, network, vantage):
        cache = VelocityCache(ttl=100.0)
        entry = self._classify(cache, network, vantage)
        assert cache.fresh("10.0.1.1", self.CONFIG, entry.observed_at + 100.0) is entry
        assert cache.fresh("10.0.1.1", self.CONFIG, entry.observed_at + 100.1) is None

    def test_different_parameters_never_share_a_verdict(self, network, vantage):
        cache = VelocityCache(ttl=100.0)
        self._classify(cache, network, vantage)
        other = MidarConfig(max_velocity=1.0)
        assert cache.entry("10.0.1.1", other) is None


class TestUnresolvedVerdict:
    def test_shape_and_detection(self):
        verdict = unresolved_verdict(TRUE_SET, at=5.0)
        assert not verdict.testable
        assert not verdict.agrees
        assert verdict.partition == ()
        assert verdict.classes == tuple(
            (address, "unresolved") for address in sorted(TRUE_SET)
        )
        assert is_unresolved(verdict)

    def test_normal_verdicts_not_flagged(self, network):
        report = run_validator(
            ValidationRun(network), _spec_vantage(midar), candidates=CANDIDATES, start_time=0.0
        )
        assert not any(is_unresolved(v) for v in report.verdicts)


class TestUncappedParity:
    """No cap: every decision matches the plain pipelines, for fewer probes."""

    @pytest.mark.parametrize(
        "spec_fn,candidates,saves",
        [
            # Ally alone has no estimation stage or repeat passes to save
            # on — its wins come from composition (test below).
            (midar, CANDIDATES, True),
            (ally, CANDIDATES, False),
            (speedtrap, (V6_TRUE_SET,), True),
        ],
        ids=["midar", "ally", "speedtrap"],
    )
    def test_decision_parity_with_fewer_probes(
        self, make_network, count_probes, spec_fn, candidates, saves
    ):
        spec = _spec_vantage(spec_fn)
        plain_network = make_network()
        plain_counter = count_probes(plain_network)
        plain = run_validator(
            ValidationRun(plain_network), spec, candidates=candidates, start_time=0.0
        )

        budgeted_network = make_network()
        budgeted_counter = count_probes(budgeted_network)
        run = ValidationRun(budgeted_network)
        run.optimizer = ProbeBudgetOptimizer()
        optimized = run_validator(run, spec, candidates=candidates, start_time=0.0)

        assert _decisions(optimized) == _decisions(plain)
        if saves:
            assert budgeted_counter["probes"] < plain_counter["probes"]
        else:
            assert budgeted_counter["probes"] <= plain_counter["probes"]
        assert run.optimizer.budget.spent == budgeted_counter["probes"]

    def test_composed_midar_ally_shares_estimation(self, make_network, count_probes):
        network = make_network()
        counter = count_probes(network)
        run = ValidationRun(network)
        run.optimizer = ProbeBudgetOptimizer()
        run_validator(run, _spec_vantage(midar), candidates=CANDIDATES, start_time=0.0)
        after_midar = counter["probes"]
        independent_network = make_network()
        independent_counter = count_probes(independent_network)
        run_validator(
            ValidationRun(independent_network),
            _spec_vantage(ally),
            candidates=CANDIDATES,
            start_time=0.0,
        )
        ally_report = run_validator(
            run, _spec_vantage(ally), candidates=CANDIDATES, start_time=0.0
        )
        # Most Ally pairs are answered from banked MIDAR corroboration;
        # only pairs the transitive skip left unprobed go to the network.
        assert counter["probes"] - after_midar < independent_counter["probes"]
        assert ally_report.probes_reused > 0


class TestCappedDegradation:
    def test_skipped_sets_unresolved_resolved_verdicts_identical(self, make_network):
        spec = _spec_vantage(midar)
        uncapped_run = ValidationRun(make_network())
        uncapped_run.optimizer = ProbeBudgetOptimizer()
        uncapped = run_validator(
            uncapped_run, spec, candidates=CANDIDATES, start_time=0.0
        )
        spent = uncapped_run.optimizer.budget.spent

        # One probe short of the full spend: the last fresh-probe request
        # is denied, so the final scheduled set goes unresolved while every
        # earlier set resolved exactly as the uncapped run did.
        capped_run = ValidationRun(make_network())
        capped_run.optimizer = ProbeBudgetOptimizer(budget=spent - 1)
        capped = run_validator(capped_run, spec, candidates=CANDIDATES, start_time=0.0)

        assert capped_run.optimizer.budget.closed
        unresolved = [v for v in capped.verdicts if is_unresolved(v)]
        assert unresolved
        resolved_parity = [
            (c, u)
            for c, u in zip(capped.verdicts, uncapped.verdicts)
            if not is_unresolved(c)
        ]
        assert resolved_parity, "the capped run resolved nothing"
        for capped_verdict, uncapped_verdict in resolved_parity:
            assert capped_verdict.testable == uncapped_verdict.testable
            assert capped_verdict.agrees == uncapped_verdict.agrees
            assert capped_verdict.partition == uncapped_verdict.partition

    def test_zero_budget_leaves_every_set_unresolved(self, network, count_probes):
        counter = count_probes(network)
        run = ValidationRun(network)
        run.optimizer = ProbeBudgetOptimizer(budget=0)
        report = run_validator(
            run, _spec_vantage(midar), candidates=CANDIDATES, start_time=0.0
        )
        assert counter["probes"] == 0
        assert all(is_unresolved(v) for v in report.verdicts)
        outcomes = [outcome.outcome for outcome in run.optimizer.outcomes]
        assert outcomes == ["unresolved"] * len(CANDIDATES)

    def test_zero_budget_still_answers_from_the_bank(self, network, count_probes):
        warm = ValidationRun(network)
        warm.optimizer = ProbeBudgetOptimizer()
        run_validator(warm, _spec_vantage(midar), candidates=CANDIDATES, start_time=0.0)
        counter = count_probes(network)
        warm.optimizer = ProbeBudgetOptimizer(budget=0)
        report = run_validator(
            warm, _spec_vantage(midar), candidates=CANDIDATES, start_time=0.0
        )
        assert counter["probes"] == 0
        assert not any(is_unresolved(v) for v in report.verdicts)
        assert {o.outcome for o in warm.optimizer.outcomes} == {"cached"}
        assert report.probes_issued == 0

    def test_iffinder_gated_by_budget(self, network):
        run = ValidationRun(network)
        run.optimizer = ProbeBudgetOptimizer(budget=0)
        report = run_validator(
            run, _spec_vantage(iffinder), candidates=(TRUE_SET,), start_time=0.0
        )
        (verdict,) = report.verdicts
        assert is_unresolved(verdict)

    def test_exhaustion_escapes_outside_a_runner(self, network, vantage):
        from repro.validation.bank import IpidSampleBank
        from repro.validation.budget import BudgetedMidarPipeline

        pipeline = BudgetedMidarPipeline(
            IpidSampleBank(network, vantage), None, ProbeBudgetOptimizer(budget=0)
        )
        with pytest.raises(ProbeBudgetExhausted):
            pipeline.estimate(sorted(TRUE_SET), start_time=0.0)


class TestVelocityTtl:
    def test_expired_velocity_always_reprobes(self, network, count_probes):
        run = ValidationRun(network)
        run.optimizer = ProbeBudgetOptimizer(velocity_ttl=10.0)
        run_validator(run, _spec_vantage(midar), candidates=(TRUE_SET,), start_time=0.0)
        counter = count_probes(network)
        # Well beyond the ttl: the cached velocities must not be reused.
        run_validator(
            run, _spec_vantage(midar), candidates=(TRUE_SET,), start_time=1e6
        )
        assert counter["probes"] > 0

    def test_fresh_velocity_rescores_free(self, network, count_probes):
        run = ValidationRun(network)
        run.optimizer = ProbeBudgetOptimizer(velocity_ttl=DEFAULT_VELOCITY_TTL)
        run_validator(run, _spec_vantage(midar), candidates=(TRUE_SET,), start_time=0.0)
        counter = count_probes(network)
        run_validator(run, _spec_vantage(midar), candidates=(TRUE_SET,), start_time=0.0)
        assert counter["probes"] == 0


class TestObsAccounting:
    def test_budget_counter_counts_sets_per_outcome(self, network):
        registry = obs.enable()
        try:
            run = ValidationRun(network)
            run.optimizer = ProbeBudgetOptimizer()
            run_validator(
                run, _spec_vantage(midar), candidates=CANDIDATES, start_time=0.0
            )
            probed = registry.counter_value(
                "validation.budget", outcome="probed", validator="midar"
            )
            assert probed == len(CANDIDATES)
        finally:
            obs.disable()


class TestRunBudgeted:
    def test_restores_previous_optimizer(self, network):
        run = ValidationRun(network)
        sentinel = ProbeBudgetOptimizer()
        run.optimizer = sentinel
        spec = _spec_vantage(midar, start_time=0.0)
        with pytest.raises(ValidationError):
            run_budgeted(run, [spec])  # no session: candidate derivation fails
        assert run.optimizer is sentinel

    def test_unknown_validator_name_raises(self, network):
        from repro.errors import RegistryError

        with pytest.raises(RegistryError, match="unknown validator"):
            run_budgeted(ValidationRun(network), ["no-such-validator"])


class TestConsensus:
    def _reports(self, network):
        run = ValidationRun(network)
        specs = (_spec_vantage(midar), _spec_vantage(ally))
        reports = [
            run_validator(run, spec, candidates=CANDIDATES, start_time=0.0)
            for spec in specs
        ]
        return consensus(*specs), reports

    def test_majority_fold(self, network):
        spec, reports = self._reports(network)
        folded = consensus_report(spec, reports, CANDIDATES, 0.0)
        assert folded.candidates == len(CANDIDATES)
        true_verdict, false_verdict, random_verdict = folded.verdicts
        assert true_verdict.testable and true_verdict.agrees
        assert false_verdict.testable and not false_verdict.agrees
        # MIDAR abstains on the random-IPID device; Ally still casts a
        # disagree vote, which alone decides the set.
        assert random_verdict.testable and not random_verdict.agrees
        assert ("0:midar", "untestable") in random_verdict.classes
        assert folded.probes_issued == sum(r.probes_issued for r in reports)

    def test_breakdown_round_trip(self, network):
        spec, reports = self._reports(network)
        folded = consensus_report(spec, reports, CANDIDATES, 0.0)
        rows = consensus_breakdown(folded)
        assert [row.candidate for row in rows] == [frozenset(c) for c in CANDIDATES]
        names = [name for name, _ in rows[0].outcomes]
        assert names == ["0:midar", "1:ally"]
        assert rows[0].agree_votes == 2 and not rows[0].conflict
        assert rows[1].disagree_votes == 2

    def test_unresolved_votes_abstain(self, network):
        import dataclasses

        spec, reports = self._reports(network)
        unresolved = tuple(
            unresolved_verdict(candidate, 0.0) for candidate in CANDIDATES
        )
        starved = [reports[0], dataclasses.replace(reports[1], verdicts=unresolved)]
        folded = consensus_report(spec, starved, CANDIDATES, 0.0)
        # With one technique starved out the other decides alone.
        assert folded.verdicts[0].agrees
        assert ("1:ally", "unresolved") in folded.verdicts[0].classes

    def test_verdict_count_mismatch_raises(self, network):
        spec, reports = self._reports(network)
        with pytest.raises(ValidationError, match="verdicts"):
            consensus_report(spec, reports, CANDIDATES[:1], 0.0)

    def test_breakdown_rejects_non_consensus_report(self, network):
        _, reports = self._reports(network)
        with pytest.raises(ValidationError, match="consensus"):
            consensus_breakdown(reports[0])

    def test_consensus_spec_requires_two_inputs(self, network):
        with pytest.raises(ValidationError, match="two"):
            run_validator(
                ValidationRun(network),
                consensus(_spec_vantage(midar)),
                candidates=CANDIDATES,
                start_time=0.0,
            )

    def test_consensus_runs_through_the_runner(self, network):
        spec = consensus(_spec_vantage(midar), _spec_vantage(ally))
        report = run_validator(
            ValidationRun(network), spec, candidates=CANDIDATES, start_time=0.0
        )
        assert report.validator == "consensus"
        assert report.verdicts[0].agrees
        assert not report.verdicts[1].agrees


class TestDerivedStartMemoisation:
    def test_equal_schedules_share_one_start(self, network):
        class FakeObservation:
            def __init__(self, timestamp):
                self.timestamp = timestamp

        class FakeSession:
            def __init__(self):
                self.calls = 0

            def dataset(self, name):
                self.calls += 1
                return [FakeObservation(10.0), FakeObservation(50.0)]

        session = FakeSession()
        run = ValidationRun(network, session=session)
        first = run.derived_start("active-ipv6", 3600.0)
        second = run.derived_start("active-ipv6", 3600.0)
        assert first == second == 50.0 + 3600.0
        assert session.calls == 1  # memoised: one derivation, one bank key
        assert run.derived_start("active-ipv6", 7200.0) == 50.0 + 7200.0
        assert session.calls == 2

    def test_without_session_raises(self, network):
        with pytest.raises(ValidationError, match="session"):
            ValidationRun(network).derived_start("active-ipv6", 3600.0)
