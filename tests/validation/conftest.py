"""Shared fixtures for the validation-subsystem tests.

``controlled_network`` builds the same hand-crafted device mix the MIDAR
baseline tests use: one shared-counter router (true aliases detectable via
IPID), a second shared-counter router (distinct device), a per-interface
router, and random/constant-IPID devices — every verdict class reachable
with a handful of addresses and zero loss.
"""

import random

import pytest

from repro.net.ipid import (
    ConstantIpidCounter,
    MonotonicIpidCounter,
    PerInterfaceIpidCounter,
    RandomIpidCounter,
)
from repro.simnet.asn import AsRegistry, AsRole, AutonomousSystem
from repro.simnet.device import Device, DeviceRole, Interface
from repro.simnet.network import SimulatedInternet, VantagePoint

VP = VantagePoint(name="validation-test")


def build_network():
    registry = AsRegistry()
    registry.add(AutonomousSystem(asn=100, name="ISP", role=AsRole.ISP))
    devices = [
        Device(
            device_id="shared",
            role=DeviceRole.CORE_ROUTER,
            home_asn=100,
            interfaces=[
                Interface(name="a", address="10.0.1.1", asn=100),
                Interface(name="b", address="10.0.1.2", asn=100),
                Interface(name="c", address="10.0.1.3", asn=100),
                Interface(name="v6a", address="2001:db80::11", asn=100),
                Interface(name="v6b", address="2001:db80::12", asn=100),
            ],
            ipid_counter=MonotonicIpidCounter(start=1000, velocity=5.0, jitter=0),
        ),
        Device(
            device_id="shared-2",
            role=DeviceRole.CORE_ROUTER,
            home_asn=100,
            interfaces=[
                Interface(name="a", address="10.0.2.1", asn=100),
                Interface(name="b", address="10.0.2.2", asn=100),
            ],
            ipid_counter=MonotonicIpidCounter(start=40000, velocity=5.0, jitter=0),
        ),
        Device(
            device_id="per-interface",
            role=DeviceRole.CORE_ROUTER,
            home_asn=100,
            interfaces=[
                Interface(name="a", address="10.0.3.1", asn=100),
                Interface(name="b", address="10.0.3.2", asn=100),
            ],
            ipid_counter=PerInterfaceIpidCounter(velocity=5.0, rng=random.Random(99)),
        ),
        Device(
            device_id="random",
            role=DeviceRole.SERVER,
            home_asn=100,
            interfaces=[
                Interface(name="a", address="10.0.4.1", asn=100),
                Interface(name="b", address="10.0.4.2", asn=100),
            ],
            ipid_counter=RandomIpidCounter(rng=random.Random(4)),
        ),
        Device(
            device_id="constant",
            role=DeviceRole.SERVER,
            home_asn=100,
            interfaces=[
                Interface(name="a", address="10.0.5.1", asn=100),
                Interface(name="b", address="10.0.5.2", asn=100),
            ],
            ipid_counter=ConstantIpidCounter(value=0),
        ),
    ]
    return SimulatedInternet(registry=registry, devices=devices, seed=1, loss_rate=0.0)


@pytest.fixture
def network():
    return build_network()


@pytest.fixture
def make_network():
    """Factory fixture: a fresh controlled network per call."""
    return build_network


@pytest.fixture
def vantage():
    return VP


@pytest.fixture
def count_probes():
    """Factory: wrap a network's ``sample_ipid`` with a call counter."""

    def wrap(network):
        counter = {"probes": 0}
        original = network.sample_ipid

        def counting(address, vantage, now=0.0):
            counter["probes"] += 1
            return original(address, vantage, now=now)

        network.sample_ipid = counting
        return counter

    return wrap
