"""Tests for validator specs and the validator registries."""

import pytest

from repro.errors import RegistryError
from repro.validation.spec import (
    VALIDATOR_KINDS,
    VALIDATORS,
    ValidatorSpec,
    ally,
    display_name,
    family_subset,
    midar,
    named_validator,
    register_validator,
    sample,
)


class TestValidatorSpec:
    def test_create_normalises_params(self):
        spec = ValidatorSpec.create("midar", size=3, protocol="ssh")
        assert spec.params == (("protocol", "ssh"), ("size", 3))
        assert spec.param("size") == 3
        assert spec.param("absent", "fallback") == "fallback"

    def test_specs_are_hashable_cache_keys(self):
        cache = {midar(protocol="ssh"): 1}
        assert cache[midar(protocol="ssh")] == 1
        assert midar(protocol="ssh") != midar(protocol="bgp")

    def test_describe_renders_tree(self):
        spec = sample(midar(protocol="ssh"), size=5, seed=1, max_size=10)
        text = spec.describe()
        assert text.startswith("sample(")
        assert "midar(protocol=ssh)" in text

    def test_leaf_descends_combinators(self):
        leaf = midar(protocol="bgp")
        assert sample(family_subset(leaf, "ipv6"), size=2).leaf() == leaf
        assert leaf.leaf() is leaf


class TestRegistries:
    def test_builtin_kinds_registered(self):
        for kind in ("midar", "ally", "speedtrap", "iffinder", "ptr", "sample", "filter-family"):
            assert kind in VALIDATOR_KINDS

    def test_builtin_named_validators_registered(self):
        for name in ("midar", "ally", "speedtrap", "iffinder", "ptr"):
            assert name in VALIDATORS
            assert isinstance(named_validator(name), ValidatorSpec)

    def test_unknown_validator_lists_known_names(self):
        with pytest.raises(RegistryError, match="unknown validator 'nonsense'"):
            named_validator("nonsense")

    def test_duplicate_registration_refused(self):
        with pytest.raises(RegistryError, match="already registered"):
            register_validator("midar", midar())

    def test_replace_registration_allowed(self):
        original = VALIDATORS.entry("midar")
        try:
            register_validator("midar", midar(protocol="bgp"), replace=True)
            assert named_validator("midar").leaf().param("protocol") == "bgp"
        finally:
            register_validator(
                "midar", original.value, description=original.description, replace=True
            )

    def test_display_name_prefers_registered_name(self):
        assert display_name(named_validator("midar")) == "midar"
        assert display_name(ally(label="custom")) == "custom"
        assert display_name(ally()) == "ally"  # falls back to the kind


class TestCombinators:
    def test_sample_wraps_single_input(self):
        inner = midar()
        spec = sample(inner, size=10, seed=3, max_size=5)
        assert spec.kind == "sample"
        assert spec.inputs == (inner,)
        assert spec.param("max_size") == 5

    def test_sample_without_max_size_omits_param(self):
        assert sample(midar(), size=10).param("max_size") is None

    def test_family_subset(self):
        spec = family_subset(midar(), "ipv6")
        assert spec.kind == "filter-family"
        assert spec.param("family") == "ipv6"
