"""Tests for ``ReproSession.validate`` and the Table 2 registry rebuild."""

import random

import pytest

from repro.api.config import ScenarioConfig
from repro.api.experiments import get_experiment
from repro.api.session import ReproSession
from repro.baselines.midar import MidarProber
from repro.errors import RegistryError
from repro.simnet.device import ServiceType
from repro.simnet.network import VantagePoint
from repro.validation.runner import table2_midar_spec
from repro.validation.spec import named_validator


@pytest.fixture(scope="module")
def session():
    return ReproSession(ScenarioConfig(scale=0.1, seed=5))


class TestValidateCaching:
    def test_validate_by_name_cached(self, session):
        first = session.validate("midar")
        assert session.validate("midar") is first
        assert ("midar" in {name for _, name in session.cached_validations()})

    def test_validate_by_equal_spec_shares_cache(self, session):
        by_name = session.validate("midar")
        by_spec = session.validate(named_validator("midar"))
        assert by_spec is by_name

    def test_unknown_validator_lists_alternatives(self, session):
        with pytest.raises(RegistryError, match="unknown validator 'bogus'"):
            session.validate("bogus")

    def test_shared_bank_across_validators(self, session):
        session.validate("midar")
        ally_report = session.validate("ally")
        assert ally_report.probes_reused > 0


class TestTable2RegistryParity:
    def test_table2_matches_legacy_hand_wired_build(self):
        """The registry-driven Table 2 is byte-identical to the old path.

        The legacy path is replicated inline: sample SSH sets by hand, run
        a ``MidarProber`` directly, and count testable/agreeing verdicts.
        (``bench_validation.py`` asserts the same at scale 1.0 seed 42.)
        """
        config = ScenarioConfig(scale=0.2, seed=42)
        legacy_session = ReproSession(config)
        report = legacy_session.report("active")
        ssh = report.ipv4[ServiceType.SSH]
        candidates = [
            alias_set.addresses
            for alias_set in ssh.non_singleton()
            if len(alias_set.addresses) <= 10
        ]
        chosen = random.Random(7).sample(candidates, min(150, len(candidates)))
        prober = MidarProber(
            legacy_session.network, VantagePoint(name="midar-vp", address="192.0.2.251")
        )
        start = max(o.timestamp for o in legacy_session.dataset("active-ipv6")) + 3600.0
        verdicts = prober.verify_sets(chosen, start_time=start)
        testable = [v for v in verdicts if v.testable]
        agree = sum(1 for v in testable if v.agrees)

        registry_session = ReproSession(config)
        result = get_experiment("table2").build(registry_session)
        midar_row = result.row("SSH-MIDAR")
        assert result.midar_sampled_sets == len(chosen)
        assert result.midar_testable_sets == len(testable)
        assert midar_row.sample_size == len(testable)
        assert midar_row.agree == agree
        assert midar_row.disagree == len(testable) - agree
        # The experiment's validation run landed in the session cache under
        # the same spec the registry registers for "midar".
        cached_specs = [spec for spec, _ in registry_session.cached_validations()]
        assert table2_midar_spec() in cached_specs

    def test_table2_kwargs_still_accepted(self, session):
        result = get_experiment("table2").build(session, midar_sample_size=10, midar_seed=3)
        assert result.midar_sampled_sets <= 10
        assert {row.pair for row in result.rows} == {
            "SSH-BGP",
            "SSH-SNMPv3",
            "BGP-SNMPv3",
            "SSH-MIDAR",
        }
