"""Tests for the built-in validator kinds on a controlled network."""

import random

import pytest

from repro.baselines.midar import MidarProber
from repro.errors import ValidationError
from repro.validation.runner import ValidationRun, run_validator
from repro.validation.spec import (
    ally,
    family_subset,
    iffinder,
    midar,
    ptr,
    sample,
    speedtrap,
)

TRUE_SET = frozenset({"10.0.1.1", "10.0.1.2", "10.0.1.3"})
FALSE_SET = frozenset({"10.0.1.1", "10.0.2.1"})
RANDOM_SET = frozenset({"10.0.4.1", "10.0.4.2"})
V6_MIXED_SET = frozenset({"10.0.1.1", "2001:db80::11", "2001:db80::12"})


def _spec_vantage(spec_fn, **params):
    """A technique spec probing from the test vantage."""
    return spec_fn(vantage_name="validation-test", vantage_address="192.0.2.9", **params)


class TestMidarValidator:
    def test_matches_direct_prober(self, network, make_network, vantage):
        run = ValidationRun(network)
        report = run_validator(
            run, _spec_vantage(midar), candidates=(TRUE_SET, FALSE_SET), start_time=0.0
        )
        direct = MidarProber(make_network(), vantage).verify_sets([TRUE_SET, FALSE_SET])
        assert [(v.candidate, v.testable, v.agrees) for v in report.verdicts] == [
            (v.candidate, v.testable, v.agrees) for v in direct
        ]
        assert report.candidates == 2
        assert report.testable_count == 2
        assert report.agree_count == 1
        assert report.disagree_count == 1

    def test_untestable_set_counted_in_coverage(self, network):
        report = run_validator(
            ValidationRun(network),
            _spec_vantage(midar),
            candidates=(TRUE_SET, RANDOM_SET),
            start_time=0.0,
        )
        assert report.testable_count == 1
        assert report.testable_coverage == pytest.approx(0.5)
        assert report.verdicts[1].classes  # diagnostic target classes recorded

    def test_probe_accounting(self, network, count_probes):
        counter = count_probes(network)
        report = run_validator(
            ValidationRun(network), _spec_vantage(midar), candidates=(TRUE_SET,), start_time=0.0
        )
        assert report.probes_issued == counter["probes"]
        assert report.probes_reused == 0


class TestAllyValidator:
    def test_reuses_midar_series_with_zero_fresh_probes(self, network, count_probes):
        run = ValidationRun(network)
        run_validator(run, _spec_vantage(midar), candidates=(TRUE_SET,), start_time=0.0)
        counter = count_probes(network)
        report = run_validator(run, _spec_vantage(ally), candidates=(TRUE_SET,), start_time=0.0)
        assert counter["probes"] == 0  # every pair answered from the bank
        assert report.probes_issued == 0
        assert report.probes_reused > 0
        (verdict,) = report.verdicts
        assert verdict.testable
        assert verdict.agrees
        assert verdict.partition == (TRUE_SET,)

    def test_without_reuse_probes_fresh(self, network, count_probes):
        run = ValidationRun(network)
        run_validator(run, _spec_vantage(midar), candidates=(TRUE_SET,), start_time=0.0)
        counter = count_probes(network)
        report = run_validator(
            run, _spec_vantage(ally, reuse=False), candidates=(TRUE_SET,), start_time=1e6
        )
        assert counter["probes"] > 0
        assert report.probes_issued == counter["probes"]

    def test_splits_false_set(self, network):
        report = run_validator(
            ValidationRun(network), _spec_vantage(ally), candidates=(FALSE_SET,), start_time=0.0
        )
        (verdict,) = report.verdicts
        assert verdict.testable
        assert not verdict.agrees
        assert len(verdict.partition) == 2


class TestSpeedtrapValidator:
    def test_drops_ipv4_members(self, network):
        report = run_validator(
            ValidationRun(network),
            _spec_vantage(speedtrap),
            candidates=(V6_MIXED_SET,),
            start_time=0.0,
        )
        (verdict,) = report.verdicts
        assert verdict.candidate == frozenset({"2001:db80::11", "2001:db80::12"})
        assert verdict.testable
        assert verdict.agrees


class TestSampleCombinator:
    def test_matches_seeded_random_sample(self, network):
        base = tuple(frozenset({f"10.9.{i}.1", f"10.9.{i}.2"}) for i in range(20))
        spec = sample(_spec_vantage(midar), size=5, seed=13)
        report = run_validator(ValidationRun(network), spec, candidates=base, start_time=0.0)
        expected = random.Random(13).sample(list(base), 5)
        assert [v.candidate for v in report.verdicts] == [frozenset(c) for c in expected]
        assert report.candidates == 5
        assert report.validator == "sample"
        assert report.spec == spec

    def test_max_size_filters_before_sampling(self, network):
        big = frozenset({f"10.8.0.{i}" for i in range(1, 15)})
        base = (TRUE_SET, big)
        report = run_validator(
            ValidationRun(network),
            sample(_spec_vantage(midar), size=10, seed=1, max_size=10),
            candidates=base,
            start_time=0.0,
        )
        assert report.candidates == 1
        assert report.verdicts[0].candidate == TRUE_SET


class TestFamilyCombinator:
    def test_projects_members_to_family(self, network):
        spec = family_subset(_spec_vantage(midar), "ipv6")
        report = run_validator(
            ValidationRun(network), spec, candidates=(V6_MIXED_SET,), start_time=0.0
        )
        (verdict,) = report.verdicts
        assert verdict.candidate == frozenset({"2001:db80::11", "2001:db80::12"})

    def test_rejects_unknown_family(self, network):
        with pytest.raises(ValidationError, match="unknown address family"):
            run_validator(
                ValidationRun(network),
                family_subset(_spec_vantage(midar), "ipv9"),
                candidates=(TRUE_SET,),
                start_time=0.0,
            )


class TestIffinderAndPtrValidators:
    def test_iffinder_counts_probes(self, network):
        report = run_validator(
            ValidationRun(network), _spec_vantage(iffinder), candidates=(TRUE_SET,), start_time=0.0
        )
        assert report.candidates == 1
        assert report.probes_issued == len(TRUE_SET)

    def test_ptr_unresolvable_members_untestable(self, network):
        # The controlled devices carry no hostnames, so PTR cannot test them.
        report = run_validator(
            ValidationRun(network), _spec_vantage(ptr, coverage=1.0), candidates=(TRUE_SET,), start_time=0.0
        )
        (verdict,) = report.verdicts
        assert not verdict.testable
        assert not verdict.agrees


class TestSessionlessDerivation:
    def test_missing_session_raises(self, network):
        with pytest.raises(ValidationError, match="needs a session"):
            run_validator(ValidationRun(network), _spec_vantage(midar))

    def test_missing_session_start_after_raises(self, network):
        with pytest.raises(ValidationError, match="start_time"):
            run_validator(
                ValidationRun(network),
                _spec_vantage(midar, start_after="active-ipv6"),
                candidates=(TRUE_SET,),
            )
