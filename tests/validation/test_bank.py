"""Tests for the shared IPID sample bank."""

from repro.baselines.ipid import collect_interleaved, collect_series
from repro.validation.bank import IpidSampleBank


class TestSeriesMemoisation:
    def test_identical_request_served_from_cache(self, network, vantage, count_probes):
        counter = count_probes(network)
        bank = IpidSampleBank(network, vantage)
        first = bank.series("10.0.1.1", samples=4, interval=1.0, start_time=0.0)
        assert counter["probes"] == 4
        second = bank.series("10.0.1.1", samples=4, interval=1.0, start_time=0.0)
        assert second is first
        assert counter["probes"] == 4  # no new network traffic
        assert bank.probes_issued == 4
        assert bank.probes_reused == 4

    def test_different_schedule_collects_again(self, network, vantage):
        bank = IpidSampleBank(network, vantage)
        bank.series("10.0.1.1", samples=4, interval=1.0, start_time=0.0)
        bank.series("10.0.1.1", samples=4, interval=1.0, start_time=100.0)
        assert bank.probes_issued == 8
        assert bank.probes_reused == 0

    def test_cold_bank_matches_direct_collection(self, make_network, vantage):
        banked = IpidSampleBank(make_network(), vantage).series(
            "10.0.1.1", samples=5, interval=2.0, start_time=10.0
        )
        direct = collect_series(
            make_network(), "10.0.1.1", vantage, samples=5, interval=2.0, start_time=10.0
        )
        assert banked.samples == direct.samples

    def test_unresponsive_probes_still_counted(self, network, vantage):
        bank = IpidSampleBank(network, vantage)
        series = bank.series("198.18.0.1", samples=3, interval=1.0, start_time=0.0)
        assert series.response_count == 0
        assert bank.probes_issued == 3


class TestInterleavedMemoisation:
    def test_identical_request_served_from_cache(self, network, vantage, count_probes):
        counter = count_probes(network)
        bank = IpidSampleBank(network, vantage)
        first = bank.interleaved(("10.0.1.1", "10.0.1.2"), rounds=3, interval=0.5, start_time=0.0)
        assert counter["probes"] == 6
        second = bank.interleaved(("10.0.1.1", "10.0.1.2"), rounds=3, interval=0.5, start_time=0.0)
        assert second is first
        assert counter["probes"] == 6
        assert bank.probes_reused == 6

    def test_cold_bank_matches_direct_collection(self, make_network, vantage):
        banked = IpidSampleBank(make_network(), vantage).interleaved(
            ("10.0.1.1", "10.0.1.2"), rounds=4, interval=1.0, start_time=5.0
        )
        direct = collect_interleaved(
            make_network(), ["10.0.1.1", "10.0.1.2"], vantage, rounds=4, interval=1.0, start_time=5.0
        )
        assert {a: s.samples for a, s in banked.items()} == {
            a: s.samples for a, s in direct.items()
        }


class TestPairReuse:
    def test_cached_pair_found_regardless_of_order(self, network, vantage):
        bank = IpidSampleBank(network, vantage)
        collected = bank.interleaved(("10.0.1.1", "10.0.1.2"), rounds=6, interval=1.0, start_time=0.0)
        cached = bank.cached_interleaved("10.0.1.2", "10.0.1.1")
        assert cached is collected
        # Without a caller schedule the banked slots count as reused.
        assert bank.probes_reused == 12

    def test_pair_reuse_counts_callers_avoided_probes(self, network, vantage):
        bank = IpidSampleBank(network, vantage)
        bank.interleaved(("10.0.1.1", "10.0.1.2"), rounds=6, interval=1.0, start_time=0.0)
        bank.cached_interleaved("10.0.1.1", "10.0.1.2", requested_probes=6)
        assert bank.probes_reused == 6  # what the caller's schedule avoided

    def test_unknown_pair_returns_none(self, network, vantage):
        bank = IpidSampleBank(network, vantage)
        assert bank.cached_interleaved("10.0.1.1", "10.0.2.1") is None

    def test_latest_collection_wins(self, network, vantage):
        bank = IpidSampleBank(network, vantage)
        bank.interleaved(("10.0.1.1", "10.0.1.2"), rounds=3, interval=0.5, start_time=0.0)
        later = bank.interleaved(("10.0.1.1", "10.0.1.2"), rounds=3, interval=0.5, start_time=50.0)
        assert bank.cached_interleaved("10.0.1.1", "10.0.1.2") is later

    def test_wider_interleave_registers_every_pair(self, network, vantage):
        bank = IpidSampleBank(network, vantage)
        collected = bank.interleaved(
            ("10.0.1.1", "10.0.1.2", "10.0.1.3"), rounds=3, interval=0.5, start_time=0.0
        )
        assert bank.cached_interleaved("10.0.1.3", "10.0.1.1") is collected
