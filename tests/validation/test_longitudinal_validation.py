"""Tests for per-snapshot validation of longitudinal campaigns."""

import pytest

from repro.api.config import ScenarioConfig
from repro.api.session import ReproSession
from repro.validation.longitudinal import validate_snapshots
from repro.validation.spec import named_validator


def _campaign(snapshots=2, churn=0.05):
    session = ReproSession(ScenarioConfig(scale=0.05, seed=3))
    campaign = session.longitudinal(
        snapshots=snapshots, churn_fraction=churn, include_ipv6=False
    )
    return campaign, campaign.run()


class TestValidateSnapshots:
    def test_one_row_per_snapshot(self):
        campaign, result = _campaign()
        rows = validate_snapshots(campaign, result, "midar")
        assert [row.snapshot for row in rows] == [0, 1]
        for row in rows:
            assert row.report.candidates == len(row.report.verdicts)
            assert row.probed_at == pytest.approx(row.time + campaign.config.interval)

    def test_probe_lag_override(self):
        campaign, result = _campaign(snapshots=1)
        (row,) = validate_snapshots(campaign, result, "midar", probe_lag=3600.0)
        assert row.probed_at == pytest.approx(row.time + 3600.0)

    def test_accepts_explicit_spec_and_is_deterministic(self):
        spec = named_validator("midar")
        campaign_a, result_a = _campaign()
        campaign_b, result_b = _campaign()
        rows_a = validate_snapshots(campaign_a, result_a, spec)
        rows_b = validate_snapshots(campaign_b, result_b, spec)
        assert [r.report.verdicts for r in rows_a] == [r.report.verdicts for r in rows_b]

    def test_shared_bank_spans_snapshots(self):
        campaign, result = _campaign()
        rows = validate_snapshots(campaign, result, "ally")
        # Ally alone has nothing to reuse in the first snapshot's bank, but
        # the run still reports its probe accounting.
        assert all(row.report.probes_issued > 0 for row in rows)

    def test_shared_run_spans_validators(self):
        from repro.validation.runner import ValidationRun

        campaign, result = _campaign()
        shared = ValidationRun(campaign.network)
        validate_snapshots(campaign, result, "midar", run=shared)
        ally_rows = validate_snapshots(campaign, result, "ally", run=shared)
        # The ally pass answers pairs from the banks the midar pass filled.
        assert sum(row.report.probes_reused for row in ally_rows) > 0
