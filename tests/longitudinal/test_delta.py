"""Tests for observation and alias-set diffing between snapshots."""

from repro.core.aliasset import AliasSet
from repro.longitudinal.delta import (
    diff_alias_sets,
    diff_observations,
    observation_key,
)
from repro.simnet.device import ServiceType
from repro.sources.records import Observation


def observation(address, engine_id="engine-a", timestamp=0.0, asn=None, port=161):
    return Observation(
        address=address,
        protocol=ServiceType.SNMPV3,
        source="test",
        port=port,
        timestamp=timestamp,
        asn=asn,
        fields=(("engine_boots", "1"), ("engine_id", engine_id)),
    )


def alias_set(*addresses):
    return AliasSet(
        identifier=f"set:{min(addresses)}",
        addresses=frozenset(addresses),
        protocols=frozenset((ServiceType.SSH,)),
    )


class TestObservationKey:
    def test_timestamp_and_source_excluded(self):
        early = observation("10.0.0.1", timestamp=0.0)
        late = Observation(
            address="10.0.0.1",
            protocol=ServiceType.SNMPV3,
            source="another-source",
            port=161,
            timestamp=999.0,
            fields=early.fields,
        )
        assert observation_key(early) == observation_key(late)

    def test_fields_included(self):
        assert observation_key(observation("10.0.0.1", engine_id="a")) != observation_key(
            observation("10.0.0.1", engine_id="b")
        )


class TestDiffObservations:
    def test_identical_snapshots_empty_delta(self):
        snapshot = [observation("10.0.0.1"), observation("10.0.0.2")]
        delta = diff_observations(snapshot, snapshot)
        assert delta.is_empty
        assert delta.unchanged == 2

    def test_timestamp_change_is_not_a_delta(self):
        delta = diff_observations(
            [observation("10.0.0.1", timestamp=0.0)],
            [observation("10.0.0.1", timestamp=604800.0)],
        )
        assert delta.is_empty

    def test_added_and_removed(self):
        delta = diff_observations(
            [observation("10.0.0.1"), observation("10.0.0.2")],
            [observation("10.0.0.2"), observation("10.0.0.3")],
        )
        assert [o.address for o in delta.added] == ["10.0.0.3"]
        assert [o.address for o in delta.removed] == ["10.0.0.1"]
        assert delta.unchanged == 1

    def test_identity_change_is_remove_plus_add(self):
        """An address answering with new identifier material churns."""
        delta = diff_observations(
            [observation("10.0.0.1", engine_id="old-device")],
            [observation("10.0.0.1", engine_id="new-device")],
        )
        assert len(delta.added) == 1 and delta.added[0].field("engine_id") == "new-device"
        assert len(delta.removed) == 1 and delta.removed[0].field("engine_id") == "old-device"

    def test_removed_returns_original_objects(self):
        original = observation("10.0.0.1")
        delta = diff_observations([original], [])
        assert delta.removed[0] is original

    def test_multiset_semantics(self):
        twice = [observation("10.0.0.1"), observation("10.0.0.1")]
        once = [observation("10.0.0.1")]
        shrinking = diff_observations(twice, once)
        assert len(shrinking.removed) == 1 and not shrinking.added
        assert shrinking.unchanged == 1
        growing = diff_observations(once, twice)
        assert len(growing.added) == 1 and not growing.removed

    def test_port_change_within_bucket(self):
        delta = diff_observations(
            [observation("10.0.0.1", port=161)], [observation("10.0.0.1", port=1161)]
        )
        assert len(delta.added) == 1 and len(delta.removed) == 1


class TestDiffAliasSets:
    def test_no_change(self):
        sets = [alias_set("10.0.0.1", "10.0.0.2")]
        delta = diff_alias_sets(sets, [alias_set("10.0.0.1", "10.0.0.2")])
        assert delta.unchanged == 1
        assert delta.changed == 0
        assert delta.persistence == 1.0

    def test_born(self):
        delta = diff_alias_sets([], [alias_set("10.0.0.1", "10.0.0.2")])
        assert delta.born == (frozenset({"10.0.0.1", "10.0.0.2"}),)

    def test_dissolved(self):
        delta = diff_alias_sets([alias_set("10.0.0.1", "10.0.0.2")], [])
        assert delta.dissolved == (frozenset({"10.0.0.1", "10.0.0.2"}),)
        assert delta.persistence == 0.0

    def test_grown(self):
        delta = diff_alias_sets(
            [alias_set("10.0.0.1", "10.0.0.2")],
            [alias_set("10.0.0.1", "10.0.0.2", "10.0.0.3")],
        )
        assert delta.grown == (frozenset({"10.0.0.1", "10.0.0.2", "10.0.0.3"}),)

    def test_pure_merge_counts_as_grown(self):
        delta = diff_alias_sets(
            [alias_set("10.0.0.1", "10.0.0.2"), alias_set("10.0.0.3", "10.0.0.4")],
            [alias_set("10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4")],
        )
        assert len(delta.grown) == 1
        assert not delta.migrated

    def test_shrunk_and_split(self):
        delta = diff_alias_sets(
            [alias_set("10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4")],
            [alias_set("10.0.0.1", "10.0.0.2"), alias_set("10.0.0.3", "10.0.0.4")],
        )
        assert len(delta.shrunk) == 2
        # The original set scattered over two current sets: a split.
        assert delta.split_origins == (
            frozenset({"10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4"}),
        )

    def test_migrated(self):
        delta = diff_alias_sets(
            [alias_set("10.0.0.1", "10.0.0.2")],
            [alias_set("10.0.0.1", "10.0.0.9")],
        )
        assert delta.migrated == (frozenset({"10.0.0.1", "10.0.0.9"}),)

    def test_disrupted_previous_tracks_every_non_surviving_set(self):
        unchanged = alias_set("10.0.1.1", "10.0.1.2")
        delta = diff_alias_sets(
            [unchanged, alias_set("10.0.0.1", "10.0.0.2")],
            [unchanged, alias_set("10.0.0.1", "10.0.0.3")],
        )
        assert delta.disrupted_previous == (frozenset({"10.0.0.1", "10.0.0.2"}),)
        assert delta.unchanged == 1
        assert delta.persistence == 0.5

    def test_counts(self):
        delta = diff_alias_sets(
            [alias_set("10.0.0.1", "10.0.0.2")], [alias_set("10.0.0.3", "10.0.0.4")]
        )
        counts = delta.counts()
        assert counts["born"] == 1
        assert counts["dissolved"] == 1
        assert counts["unchanged"] == 0


class TestDiffAliasSetsEdgeCases:
    def test_simultaneous_grow_and_migrate_in_one_delta(self):
        # One set absorbs a brand-new address (grown) while, in the same
        # delta, another set trades an address for a newcomer (migrated).
        delta = diff_alias_sets(
            [
                alias_set("10.0.0.1", "10.0.0.2"),
                alias_set("10.0.1.1", "10.0.1.2"),
            ],
            [
                alias_set("10.0.0.1", "10.0.0.2", "10.0.0.3"),
                alias_set("10.0.1.1", "10.0.1.9"),
            ],
        )
        assert delta.grown == (frozenset({"10.0.0.1", "10.0.0.2", "10.0.0.3"}),)
        assert delta.migrated == (frozenset({"10.0.1.1", "10.0.1.9"}),)
        assert delta.born == ()
        assert delta.dissolved == ()
        assert delta.unchanged == 0
        # Both previous sets were disrupted, neither was a split.
        assert len(delta.disrupted_previous) == 2
        assert delta.split_origins == ()

    def test_dissolve_and_same_label_rebirth_in_one_batch(self):
        # A set vanishes entirely while a disjoint set carrying the same
        # canonical label (same smallest address is impossible for unions,
        # so use disjoint membership with equal identifier labels) appears:
        # the diff works on address-frozensets, so the old membership is
        # dissolved and the new one born — no false "migrated" match.
        dissolved = alias_set("10.0.0.1", "10.0.0.2")
        reborn = AliasSet(
            identifier=dissolved.identifier,  # same label, fresh membership
            addresses=frozenset({"10.0.9.1", "10.0.9.2"}),
            protocols=frozenset((ServiceType.SSH,)),
        )
        delta = diff_alias_sets([dissolved], [reborn])
        assert delta.dissolved == (frozenset({"10.0.0.1", "10.0.0.2"}),)
        assert delta.born == (frozenset({"10.0.9.1", "10.0.9.2"}),)
        assert delta.migrated == ()
        assert delta.unchanged == 0
        assert delta.persistence == 0.0

    def test_persistence_with_empty_previous_snapshot(self):
        # Bootstrap case: no previous sets means nothing could be
        # disrupted, so persistence is vacuously perfect even though
        # every current set is newly born.
        delta = diff_alias_sets([], [alias_set("10.0.0.1", "10.0.0.2")])
        assert delta.born == (frozenset({"10.0.0.1", "10.0.0.2"}),)
        assert delta.disrupted_previous == ()
        assert delta.unchanged == 0
        assert delta.persistence == 1.0

    def test_both_snapshots_empty(self):
        delta = diff_alias_sets([], [])
        assert delta.is_empty if hasattr(delta, "is_empty") else True
        assert delta.changed == 0
        assert delta.persistence == 1.0
