"""Tests for the incremental LongitudinalEngine."""

import pytest

from repro.core.engine import ResolutionEngine, report_signature
from repro.errors import DatasetError
from repro.longitudinal.delta import diff_observations
from repro.longitudinal.engine import LongitudinalEngine
from repro.simnet.device import ServiceType
from repro.sources.records import Observation


def ssh_observation(address, device="device-a", asn=None):
    return Observation(
        address=address,
        protocol=ServiceType.SSH,
        source="test",
        port=22,
        asn=asn,
        fields=(
            ("banner", "SSH-2.0-OpenSSH_9.4"),
            ("capability_signature", f"caps-{device}"),
            ("host_key_fingerprint", f"key-{device}"),
        ),
    )


def snmp_observation(address, device="device-a", asn=None):
    return Observation(
        address=address,
        protocol=ServiceType.SNMPV3,
        source="test",
        port=161,
        asn=asn,
        fields=(("engine_boots", "1"), ("engine_id", f"engine-{device}")),
    )


SNAPSHOT_0 = [
    ssh_observation("10.0.0.1", "alpha", asn=65001),
    ssh_observation("10.0.0.2", "alpha", asn=65001),
    ssh_observation("2001:db8::1", "alpha", asn=65001),
    ssh_observation("10.0.0.3", "beta", asn=65002),
    snmp_observation("10.0.0.3", "beta", asn=65002),
    snmp_observation("10.0.0.4", "beta", asn=65002),
    ssh_observation("10.0.0.9", "gamma"),
]

# 10.0.0.2 churns from device alpha to device beta; gamma goes dark;
# a brand-new device appears.
SNAPSHOT_1 = [
    ssh_observation("10.0.0.1", "alpha", asn=65001),
    ssh_observation("2001:db8::1", "alpha", asn=65001),
    ssh_observation("10.0.0.2", "beta", asn=65001),
    ssh_observation("10.0.0.3", "beta", asn=65002),
    snmp_observation("10.0.0.3", "beta", asn=65002),
    snmp_observation("10.0.0.4", "beta", asn=65002),
    ssh_observation("10.0.0.7", "delta"),
    ssh_observation("10.0.0.8", "delta"),
]


def test_bootstrap_matches_from_scratch():
    engine = LongitudinalEngine()
    resolution = engine.bootstrap(SNAPSHOT_0, name="s0")
    reference = ResolutionEngine().resolve(SNAPSHOT_0, name="s0")
    assert report_signature(resolution.report) == report_signature(reference)


def test_apply_matches_from_scratch():
    engine = LongitudinalEngine()
    engine.bootstrap(SNAPSHOT_0, name="s0")
    delta = diff_observations(SNAPSHOT_0, SNAPSHOT_1)
    resolution = engine.apply(delta, name="s1")
    reference = ResolutionEngine().resolve(SNAPSHOT_1, name="s1")
    assert report_signature(resolution.report) == report_signature(reference)


def test_apply_back_and_forth_restores_original_report():
    engine = LongitudinalEngine()
    first = engine.bootstrap(SNAPSHOT_0, name="s")
    forward = diff_observations(SNAPSHOT_0, SNAPSHOT_1)
    engine.apply(forward, name="s")
    backward = diff_observations(SNAPSHOT_1, SNAPSHOT_0)
    restored = engine.apply(backward, name="s")
    assert report_signature(restored.report) == report_signature(first.report)


def test_unchanged_sets_are_reused_by_identity():
    engine = LongitudinalEngine()
    before = engine.bootstrap(SNAPSHOT_0, name="s")
    delta = diff_observations(SNAPSHOT_0, SNAPSHOT_1)
    after = engine.apply(delta, name="s")
    # Device beta's SNMP set is untouched by the delta: the exact same
    # AliasSet object must appear in both snapshots' collections.
    def snmp_sets(report):
        return {
            alias_set.identifier: alias_set
            for alias_set in report.ipv4[ServiceType.SNMPV3]
        }
    before_sets = snmp_sets(before.report)
    after_sets = snmp_sets(after.report)
    assert before_sets.keys() == after_sets.keys()
    for identifier, alias_set in before_sets.items():
        assert after_sets[identifier] is alias_set


def test_untouched_union_components_are_reused_by_identity():
    engine = LongitudinalEngine()
    before = engine.bootstrap(SNAPSHOT_0, name="s")
    after = engine.apply(diff_observations(SNAPSHOT_0, SNAPSHOT_1), name="s")
    # Alpha's IPv6 component is untouched by the delta: same object.
    before_v6 = {s.identifier: s for s in before.report.ipv6_union}
    after_v6 = {s.identifier: s for s in after.report.ipv6_union}
    assert before_v6.keys() == after_v6.keys()
    for identifier, alias_set in before_v6.items():
        assert after_v6[identifier] is alias_set
    # Any IPv4 component that survived with identical membership must also
    # be carried over by reference, not rebuilt.
    before_union = {s.identifier: s for s in before.report.ipv4_union}
    after_union = {s.identifier: s for s in after.report.ipv4_union}
    for identifier in before_union.keys() & after_union.keys():
        if before_union[identifier].addresses == after_union[identifier].addresses:
            assert before_union[identifier] is after_union[identifier]


def test_alias_delta_reports_churn_movement():
    engine = LongitudinalEngine()
    engine.bootstrap(SNAPSHOT_0, name="s")
    resolution = engine.apply(diff_observations(SNAPSHOT_0, SNAPSHOT_1), name="s")
    delta = resolution.ipv4_delta
    # Device delta's pair is brand new.
    assert frozenset({"10.0.0.7", "10.0.0.8"}) in delta.born
    # 10.0.0.2 moved from alpha to beta: the combined coverage of its two
    # matched previous sets ({1,2} and {3,4}) lost 10.0.0.1 (now a
    # singleton), so the surviving {2,3,4} classifies as shrunk and alpha's
    # old set is disrupted.
    assert frozenset({"10.0.0.2", "10.0.0.3", "10.0.0.4"}) in delta.shrunk
    assert frozenset({"10.0.0.1", "10.0.0.2"}) in delta.disrupted_previous


def test_apply_before_bootstrap_rejected():
    engine = LongitudinalEngine()
    with pytest.raises(DatasetError):
        engine.apply(diff_observations([], SNAPSHOT_0), name="s")


def test_double_bootstrap_rejected():
    engine = LongitudinalEngine()
    engine.bootstrap(SNAPSHOT_0, name="s")
    with pytest.raises(DatasetError):
        engine.bootstrap(SNAPSHOT_1, name="s")


def test_report_property_tracks_latest():
    engine = LongitudinalEngine()
    assert engine.report is None
    engine.bootstrap(SNAPSHOT_0, name="s0")
    assert engine.report is not None and engine.report.name == "s0"
    engine.apply(diff_observations(SNAPSHOT_0, SNAPSHOT_1), name="s1")
    assert engine.report.name == "s1"
