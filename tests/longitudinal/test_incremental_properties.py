"""Property tests: incremental state equals a from-scratch build of survivors.

Two layers are exercised with hypothesis-generated observation streams:

* :class:`~repro.core.engine.ObservationIndex` — interleaved add/remove
  sequences leave the index in exactly the state a fresh build of the
  surviving observations produces (``state_signature`` equality, multiset
  semantics included), and
* :class:`~repro.longitudinal.engine.LongitudinalEngine` — bootstrapping
  on snapshot A and applying the diff to snapshot B yields a report
  identical to resolving B from scratch
  (:func:`~repro.core.engine.report_signature` equality).

Observation generation respects the documented ASN-stability constraint:
an address's ASN is a function of the address (as it is for every real
source in this repo, where ASNs come from routing data), though whether an
individual observation carries it at all varies.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import ObservationIndex, ResolutionEngine, report_signature
from repro.longitudinal.delta import diff_observations
from repro.longitudinal.engine import LongitudinalEngine
from repro.simnet.device import ServiceType
from repro.sources.records import Observation

_IPV4 = [f"10.0.0.{i}" for i in range(1, 9)]
_IPV6 = [f"2001:db8::{i:x}" for i in range(1, 5)]
_DEVICES = ["alpha", "beta", "gamma"]


def _asn_for(address: str) -> int:
    """Deterministic per-address ASN (the documented stability constraint)."""
    return 65000 + sum(address.encode()) % 5


@st.composite
def _observation(draw):
    address = draw(st.sampled_from(_IPV4 + _IPV6))
    device = draw(st.sampled_from(_DEVICES))
    protocol = draw(st.sampled_from([ServiceType.SSH, ServiceType.SNMPV3, ServiceType.BGP]))
    carries_identifier = draw(st.booleans())
    carries_asn = draw(st.booleans())
    if protocol is ServiceType.SSH:
        fields = (
            ("banner", "SSH-2.0-OpenSSH_9.4"),
            ("capability_signature", f"caps-{device}"),
            ("host_key_fingerprint", f"key-{device}"),
        ) if carries_identifier else ()
        port = 22
    elif protocol is ServiceType.SNMPV3:
        fields = (
            ("engine_boots", "1"),
            ("engine_id", f"engine-{device}"),
        ) if carries_identifier else ()
        port = 161
    else:
        fields = (
            ("asn", "65000"),
            ("bgp_identifier", f"198.51.100.{1 + sum(device.encode()) % 9}"),
            ("capabilities", ""),
            ("hold_time", "90"),
            ("message_length", "45"),
            ("version", "4"),
        ) if carries_identifier else ()
        port = 179
    return Observation(
        address=address,
        protocol=protocol,
        source="hypothesis",
        port=port,
        timestamp=draw(st.floats(min_value=0.0, max_value=1e6)),
        asn=_asn_for(address) if carries_asn else None,
        fields=fields,
    )


_streams = st.lists(_observation(), min_size=0, max_size=30)


@settings(max_examples=60, deadline=None)
@given(
    stream=_streams,
    removals=st.sets(st.integers(min_value=0, max_value=29)),
    order_seed=st.integers(min_value=0, max_value=2**16),
)
def test_index_add_remove_equals_from_scratch_build(stream, removals, order_seed):
    """Interleaved add/remove == fresh build of the surviving observations."""
    operations = [("add", index) for index in range(len(stream))] + [
        ("remove", index) for index in sorted(removals) if index < len(stream)
    ]
    random.Random(order_seed).shuffle(operations)
    incremental = ObservationIndex()
    added: set[int] = set()
    deferred: list[int] = []
    for operation, index in operations:
        if operation == "add":
            incremental.add(stream[index])
            added.add(index)
            if index in deferred:
                deferred.remove(index)
                incremental.remove(stream[index])
        elif index in added:
            incremental.remove(stream[index])
        else:
            deferred.append(index)
    removed = {index for index in removals if index < len(stream)}
    survivors = [obs for index, obs in enumerate(stream) if index not in removed]
    assert (
        incremental.state_signature()
        == ObservationIndex.build(survivors).state_signature()
    )


@settings(max_examples=60, deadline=None)
@given(snapshot_a=_streams, snapshot_b=_streams)
def test_engine_delta_replay_equals_from_scratch_resolve(snapshot_a, snapshot_b):
    """bootstrap(A) + apply(diff(A, B)) == resolve(B)."""
    engine = LongitudinalEngine()
    engine.bootstrap(snapshot_a, name="s")
    delta = diff_observations(snapshot_a, snapshot_b)
    resolution = engine.apply(delta, name="s")
    reference = ResolutionEngine().resolve(snapshot_b, name="s")
    assert report_signature(resolution.report) == report_signature(reference)


@settings(max_examples=30, deadline=None)
@given(snapshots=st.lists(_streams, min_size=2, max_size=4))
def test_engine_delta_chain_equals_from_scratch_resolve(snapshots):
    """Parity holds across a whole chain of deltas, not just one step."""
    engine = LongitudinalEngine()
    engine.bootstrap(snapshots[0], name="s")
    previous = snapshots[0]
    resolution = None
    for snapshot in snapshots[1:]:
        resolution = engine.apply(diff_observations(previous, snapshot), name="s")
        previous = snapshot
    reference = ResolutionEngine().resolve(snapshots[-1], name="s")
    assert report_signature(resolution.report) == report_signature(reference)
