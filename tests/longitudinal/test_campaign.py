"""Tests for the longitudinal campaign driver."""

import pytest

from repro.core.engine import ResolutionEngine, report_signature
from repro.errors import SimulationError
from repro.experiments.scenario import PaperScenario, ScenarioConfig
from repro.longitudinal import LongitudinalCampaign, LongitudinalConfig
from repro.net.addresses import AddressFamily
from repro.simnet.topology import generate_topology, small_topology_config


def quiet_network(seed=31):
    """A small network without loss, rate limiting, or built-in churn."""
    config = small_topology_config(
        seed=seed,
        loss_rate=0.0,
        cloud_rate_limited_fraction=0.0,
        isp_rate_limited_fraction=0.0,
        churn_fraction=0.0,
    )
    return generate_topology(config)


class TestConfigValidation:
    def test_zero_snapshots_rejected(self):
        with pytest.raises(SimulationError):
            LongitudinalConfig(snapshots=0)

    def test_full_churn_rejected(self):
        with pytest.raises(SimulationError):
            LongitudinalConfig(churn_fraction=1.0)

    def test_negative_interval_rejected(self):
        with pytest.raises(SimulationError):
            LongitudinalConfig(interval=-1.0)


class TestQuietCampaign:
    """Without churn or loss, every snapshot is identical."""

    @pytest.fixture(scope="class")
    def result(self):
        campaign = LongitudinalCampaign(
            quiet_network(),
            config=LongitudinalConfig(snapshots=3, churn_fraction=0.0, seed=5),
        )
        return campaign.run()

    def test_snapshot_count(self, result):
        assert len(result.snapshots) == 3

    def test_deltas_empty(self, result):
        for snapshot in result.snapshots[1:]:
            assert snapshot.capture.delta.is_empty

    def test_full_persistence(self, result):
        for stability in result.stability(AddressFamily.IPV4)[1:]:
            assert stability.persistence == 1.0
            assert stability.born == 0
            assert stability.dissolved == 0
            assert stability.splits == 0

    def test_reports_identical_across_snapshots(self, result):
        first = result.snapshots[0].report
        last = result.final_report
        assert len(first.ipv4_union.non_singleton()) == len(
            last.ipv4_union.non_singleton()
        )


class TestChurningCampaign:
    @pytest.fixture(scope="class")
    def campaign(self):
        return LongitudinalCampaign(
            quiet_network(seed=77),
            config=LongitudinalConfig(snapshots=3, churn_fraction=0.1, seed=9),
        )

    @pytest.fixture(scope="class")
    def captures(self, campaign):
        return campaign.collect()

    @pytest.fixture(scope="class")
    def result(self, campaign, captures):
        return campaign.resolve(captures)

    def test_churn_produces_deltas(self, captures):
        for capture in captures[1:]:
            assert capture.churned
            assert not capture.delta.is_empty

    def test_incremental_matches_from_scratch_every_snapshot(self, captures, result):
        reference_engine = ResolutionEngine()
        for capture, snapshot in zip(captures, result.snapshots, strict=True):
            reference = reference_engine.resolve(capture.observations, name=capture.name)
            assert report_signature(snapshot.report) == report_signature(reference)

    def test_stability_reflects_disruption(self, result):
        rows = result.stability(AddressFamily.IPV4)[1:]
        assert any(row.persistence < 1.0 for row in rows)
        assert all(0.0 <= row.persistence <= 1.0 for row in rows)

    def test_disruptions_attributed_to_churn(self, result):
        rows = result.stability(AddressFamily.IPV4)[1:]
        # With churn as the only noise source, every disruption traces back
        # to a churned address.
        for row in rows:
            assert row.churn_attributed_disruptions == row.disrupted
            assert row.churn_attributed_splits == row.splits

    def test_churned_addresses_answer_from_new_device(self, campaign, captures):
        """The paper's mechanism: a churned address changes identity, not just
        reachability — so some churned addresses stay responsive."""
        responsive = {
            observation.address for observation in captures[-1].observations
        }
        churned = set().union(*(capture.churned for capture in captures[1:]))
        assert churned & responsive

    def test_collect_is_deterministic(self):
        def run():
            return LongitudinalCampaign(
                quiet_network(seed=77),
                config=LongitudinalConfig(snapshots=2, churn_fraction=0.1, seed=9),
            ).collect()
        first = run()
        second = run()
        assert [c.observations for c in first] == [c.observations for c in second]
        assert [c.churned for c in first] == [c.churned for c in second]


class TestScenarioWiring:
    def test_longitudinal_campaign_uses_fresh_network(self):
        scenario = PaperScenario(ScenarioConfig(scale=0.05, seed=3))
        campaign = scenario.longitudinal_campaign(snapshots=2)
        assert campaign.network is not scenario.network
        assert len(campaign.network.all_addresses()) == len(
            scenario.network.all_addresses()
        )

    def test_ipv4_only_campaign_has_no_ipv6(self):
        scenario = PaperScenario(ScenarioConfig(scale=0.05, seed=3))
        campaign = scenario.longitudinal_campaign(snapshots=2, include_ipv6=False)
        captures = campaign.collect()
        families = {
            observation.family
            for capture in captures
            for observation in capture.observations
        }
        assert families == {AddressFamily.IPV4}
