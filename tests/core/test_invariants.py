"""Property-based tests of alias-resolution invariants.

These check structural properties that must hold for *any* observation set:
grouping produces a partition, the cross-protocol union never loses
addresses, dual-stack sets always contain both families, and identifier
extraction is deterministic.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alias_resolution import AliasResolver
from repro.core.dual_stack import infer_dual_stack, union_dual_stack
from repro.core.identifiers import extract_identifier
from repro.simnet.device import ServiceType
from repro.sources.records import Observation

# Strategy: observations over a small universe of addresses and identifiers,
# so collisions (aliases) actually happen.
_ipv4 = st.integers(min_value=1, max_value=40).map(lambda i: f"10.0.0.{i}")
_ipv6 = st.integers(min_value=1, max_value=40).map(lambda i: f"2001:db8::{i:x}")
_key = st.integers(min_value=1, max_value=8).map(lambda i: f"SHA256:key{i}")
_engine = st.integers(min_value=1, max_value=8).map(lambda i: f"80001f8803aabbcc0{i}")


def _ssh_observation(address, key):
    return Observation(
        address=address,
        protocol=ServiceType.SSH,
        source="active",
        port=22,
        fields=(
            ("banner", "SSH-2.0-OpenSSH_9.3"),
            ("capability_signature", "caps"),
            ("host_key_fingerprint", key),
        ),
    )


def _snmp_observation(address, engine_id):
    return Observation(
        address=address,
        protocol=ServiceType.SNMPV3,
        source="active",
        port=161,
        fields=(("engine_boots", "1"), ("engine_id", engine_id)),
    )


# One observation per address (the data-source layer deduplicates per
# (address, protocol) before grouping, so conflicting identifiers for the
# same address never reach the resolver).
ssh_observations = st.dictionaries(st.one_of(_ipv4, _ipv6), _key, max_size=60).map(
    lambda mapping: [_ssh_observation(address, key) for address, key in mapping.items()]
)
snmp_observations = st.dictionaries(st.one_of(_ipv4, _ipv6), _engine, max_size=60).map(
    lambda mapping: [_snmp_observation(address, engine) for address, engine in mapping.items()]
)


@settings(max_examples=60, deadline=None)
@given(observations=ssh_observations)
def test_grouping_is_a_partition(observations):
    collection = AliasResolver().group(observations, protocol=ServiceType.SSH)
    seen: dict[str, int] = {}
    for index, alias_set in enumerate(collection):
        assert alias_set.size >= 1
        for address in alias_set.addresses:
            assert address not in seen, "address appears in two sets"
            seen[address] = index
    # Every observed address with identifier material is covered.
    assert set(seen) == {observation.address for observation in observations}


@settings(max_examples=60, deadline=None)
@given(ssh=ssh_observations, snmp=snmp_observations)
def test_union_preserves_addresses_and_merges_only_overlaps(ssh, snmp):
    resolver = AliasResolver()
    ssh_collection = resolver.group(ssh, protocol=ServiceType.SSH, name="ssh")
    snmp_collection = resolver.group(snmp, protocol=ServiceType.SNMPV3, name="snmp")
    union = AliasResolver.union([ssh_collection, snmp_collection])
    assert union.addresses() == ssh_collection.addresses() | snmp_collection.addresses()
    # The union never has more sets than the two inputs combined.
    assert len(union) <= len(ssh_collection) + len(snmp_collection)
    # Union sets are still a partition.
    seen = set()
    for alias_set in union:
        assert not (alias_set.addresses & seen)
        seen |= alias_set.addresses


@settings(max_examples=60, deadline=None)
@given(observations=ssh_observations)
def test_dual_stack_sets_always_span_both_families(observations):
    collection = infer_dual_stack(observations)
    for dual in collection:
        assert dual.ipv4_addresses and dual.ipv6_addresses
    merged = union_dual_stack([collection])
    assert len(merged) <= len(collection) or len(collection) == 0


@settings(max_examples=60, deadline=None)
@given(observations=ssh_observations)
def test_identifier_extraction_is_deterministic(observations):
    for observation in observations:
        assert extract_identifier(observation) == extract_identifier(observation)


@settings(max_examples=40, deadline=None)
@given(ssh=ssh_observations)
def test_non_singleton_subset_of_all_sets(ssh):
    collection = AliasResolver().group(ssh, protocol=ServiceType.SSH)
    non_singleton = collection.non_singleton()
    assert len(non_singleton) <= len(collection)
    assert non_singleton.addresses() <= collection.addresses()
