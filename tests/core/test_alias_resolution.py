"""Tests for observation grouping and cross-protocol union."""

from repro.core.alias_resolution import AliasResolver, UnionFind
from repro.net.addresses import AddressFamily
from repro.simnet.device import ServiceType
from repro.sources.records import Observation


def ssh_obs(address, key, caps="caps", asn=None):
    return Observation(
        address=address,
        protocol=ServiceType.SSH,
        source="active",
        port=22,
        asn=asn,
        fields=(
            ("banner", "SSH-2.0-OpenSSH_9.3"),
            ("capability_signature", caps),
            ("host_key_fingerprint", key),
        ),
    )


def snmp_obs(address, engine_id, asn=None):
    return Observation(
        address=address,
        protocol=ServiceType.SNMPV3,
        source="active",
        port=161,
        asn=asn,
        fields=(("engine_boots", "1"), ("engine_id", engine_id)),
    )


class TestGrouping:
    def test_groups_by_identifier(self):
        observations = [
            ssh_obs("10.0.0.1", "key-A"),
            ssh_obs("10.0.0.2", "key-A"),
            ssh_obs("10.0.0.3", "key-B"),
        ]
        collection = AliasResolver().group(observations, protocol=ServiceType.SSH)
        sizes = sorted(s.size for s in collection)
        assert sizes == [1, 2]
        two_set = next(s for s in collection if s.size == 2)
        assert two_set.addresses == frozenset({"10.0.0.1", "10.0.0.2"})

    def test_family_filter(self):
        observations = [
            ssh_obs("10.0.0.1", "key-A"),
            ssh_obs("2001:db8::1", "key-A"),
        ]
        ipv4_only = AliasResolver().group(observations, family=AddressFamily.IPV4)
        assert ipv4_only.addresses() == {"10.0.0.1"}

    def test_protocol_filter(self):
        observations = [ssh_obs("10.0.0.1", "key-A"), snmp_obs("10.0.0.2", "engine-1")]
        ssh_only = AliasResolver().group(observations, protocol=ServiceType.SSH)
        assert ssh_only.addresses() == {"10.0.0.1"}

    def test_observations_without_material_ignored(self):
        empty = Observation(address="10.0.0.9", protocol=ServiceType.BGP, source="active", port=179)
        collection = AliasResolver().group([empty])
        assert len(collection) == 0

    def test_asn_mapping_collected(self):
        observations = [ssh_obs("10.0.0.1", "key-A", asn=14061), ssh_obs("10.0.0.2", "key-A", asn=14061)]
        collection = AliasResolver().group(observations)
        assert collection.asn_of("10.0.0.1") == 14061

    def test_duplicate_observations_collapse(self):
        observations = [ssh_obs("10.0.0.1", "key-A")] * 3 + [ssh_obs("10.0.0.2", "key-A")]
        collection = AliasResolver().group(observations)
        assert len(collection) == 1
        assert collection.sets[0].size == 2

    def test_different_protocols_never_share_identifier_namespace(self):
        # An SSH identifier value and an SNMP engine ID that happen to be the
        # same string must not merge addresses across protocols.
        observations = [snmp_obs("10.0.0.1", "SAME"), snmp_obs("10.0.0.2", "OTHER")]
        ssh_like = Observation(
            address="10.0.0.3",
            protocol=ServiceType.SNMPV3,
            source="active",
            port=161,
            fields=(("engine_boots", "1"), ("engine_id", "SAME")),
        )
        collection = AliasResolver().group(observations + [ssh_like])
        same_set = next(s for s in collection if "10.0.0.1" in s.addresses)
        assert same_set.addresses == frozenset({"10.0.0.1", "10.0.0.3"})


class TestUnion:
    def test_union_bridges_sets_sharing_addresses(self):
        resolver = AliasResolver()
        ssh_collection = resolver.group(
            [ssh_obs("10.0.0.1", "key-A"), ssh_obs("10.0.0.2", "key-A")], name="ssh"
        )
        snmp_collection = resolver.group(
            [snmp_obs("10.0.0.2", "engine-1"), snmp_obs("10.0.0.3", "engine-1")], name="snmp"
        )
        union = AliasResolver.union([ssh_collection, snmp_collection])
        assert len(union) == 1
        merged = union.sets[0]
        assert merged.addresses == frozenset({"10.0.0.1", "10.0.0.2", "10.0.0.3"})
        assert merged.protocols == frozenset({ServiceType.SSH, ServiceType.SNMPV3})

    def test_union_keeps_disjoint_sets_separate(self):
        resolver = AliasResolver()
        a = resolver.group([ssh_obs("10.0.0.1", "key-A"), ssh_obs("10.0.0.2", "key-A")], name="a")
        b = resolver.group([snmp_obs("10.1.0.1", "engine-9"), snmp_obs("10.1.0.2", "engine-9")], name="b")
        union = AliasResolver.union([a, b])
        assert len(union) == 2

    def test_union_preserves_asn_mapping(self):
        resolver = AliasResolver()
        a = resolver.group([ssh_obs("10.0.0.1", "key-A", asn=1), ssh_obs("10.0.0.2", "key-A", asn=1)])
        b = resolver.group([snmp_obs("10.1.0.1", "engine-9", asn=2), snmp_obs("10.1.0.2", "engine-9", asn=2)])
        union = AliasResolver.union([a, b])
        assert union.asn_of("10.1.0.1") == 2

    def test_union_of_empty_collections(self):
        union = AliasResolver.union([])
        assert len(union) == 0


class TestUnionFind:
    def test_find_registers_singletons(self):
        union_find = UnionFind()
        assert union_find.find("a") == "a"
        assert "a" in union_find
        assert len(union_find) == 1

    def test_union_merges_components(self):
        union_find = UnionFind()
        union_find.union("a", "b")
        union_find.union("b", "c")
        assert union_find.find("a") == union_find.find("c")
        assert union_find.find("a") != union_find.find("d")

    def test_groups_partition_all_items(self):
        union_find = UnionFind()
        for item in "abcdef":
            union_find.add(item)
        union_find.union("a", "b")
        union_find.union("c", "d")
        groups = union_find.groups()
        assert {frozenset(g) for g in groups} == {
            frozenset("ab"),
            frozenset("cd"),
            frozenset("e"),
            frozenset("f"),
        }

    def test_long_chain_does_not_recurse(self):
        # The seed implementation used recursive path compression, which hit
        # RecursionError on parent chains longer than the interpreter limit.
        # Union-by-rank keeps chains built through the public API shallow, so
        # stress the iterative find on a hand-built worst-case chain.
        union_find = UnionFind()
        length = 5000
        for item in range(length + 1):
            union_find.add(item)
        core = union_find._core
        for index in range(length):
            core._parent[index] = index + 1
        assert union_find.find(0) == length
        # The chain is fully compressed afterwards.
        assert all(core._parent[index] == length for index in range(length))

    def test_rank_keeps_api_built_chains_shallow(self):
        union_find = UnionFind()
        length = 5000
        for item in reversed(range(length)):
            union_find.union(item, item + 1)
        assert len({union_find.find(item) for item in range(length + 1)}) == 1
