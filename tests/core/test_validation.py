"""Tests for cross-technique validation."""

import pytest

from repro.core.aliasset import AliasSet, AliasSetCollection
from repro.core.validation import (
    ValidationResult,
    cross_validate,
    ground_truth_accuracy,
    validate_against_reference,
)
from repro.errors import ValidationError
from repro.simnet.device import ServiceType


def collection(name, groups):
    return AliasSetCollection(
        name,
        [
            AliasSet(identifier=f"{name}-{i}", addresses=frozenset(group), protocols=frozenset({ServiceType.SSH}))
            for i, group in enumerate(groups)
        ],
    )


class TestCrossValidate:
    def test_perfect_agreement(self):
        a = collection("ssh", [["10.0.0.1", "10.0.0.2"], ["10.1.0.1", "10.1.0.2"]])
        b = collection("bgp", [["10.0.0.1", "10.0.0.2"], ["10.1.0.1", "10.1.0.2"]])
        result = cross_validate(a, b)
        assert result.sample_size == 2
        assert result.agree == 2
        assert result.disagree == 0
        assert result.agreement_rate == 1.0

    def test_disagreement_when_reference_splits_a_set(self):
        a = collection("ssh", [["10.0.0.1", "10.0.0.2", "10.0.0.3", "10.0.0.4"]])
        b = collection("snmp", [["10.0.0.1", "10.0.0.2"], ["10.0.0.3", "10.0.0.4"]])
        result = cross_validate(a, b)
        assert result.sample_size == 1
        assert result.agree == 0
        assert result.agreement_rate == 0.0

    def test_projection_to_common_addresses(self):
        # Technique B never saw 10.0.0.3; the comparison happens on the
        # projection, so the sets still match.
        a = collection("ssh", [["10.0.0.1", "10.0.0.2", "10.0.0.3"]])
        b = collection("bgp", [["10.0.0.1", "10.0.0.2"]])
        result = cross_validate(a, b)
        assert result.common_addresses == 2
        assert result.agree == 1

    def test_sets_without_common_addresses_not_counted(self):
        a = collection("ssh", [["10.0.0.1", "10.0.0.2"], ["10.5.0.1", "10.5.0.2"]])
        b = collection("bgp", [["10.0.0.1", "10.0.0.2"]])
        result = cross_validate(a, b)
        assert result.sample_size == 1

    def test_empty_collection_rejected(self):
        a = collection("ssh", [["10.0.0.1", "10.0.0.2"]])
        with pytest.raises(ValidationError):
            cross_validate(a, collection("bgp", []))

    def test_agreement_rate_zero_sample(self):
        result = ValidationResult("a", "b", common_addresses=0, sample_size=0, agree=0, disagree=0)
        assert result.agreement_rate == 0.0


class TestReferenceValidation:
    def test_against_raw_sets(self):
        a = collection("ssh", [["10.0.0.1", "10.0.0.2"], ["10.1.0.1", "10.1.0.2"]])
        result = validate_against_reference(a, [frozenset({"10.0.0.1", "10.0.0.2"})], "midar")
        assert result.technique_b == "midar"
        assert result.sample_size == 1
        assert result.agree == 1


class TestGroundTruthAccuracy:
    def test_perfect_inference(self):
        truth = [frozenset({"10.0.0.1", "10.0.0.2"}), frozenset({"10.1.0.1", "10.1.0.2"})]
        inferred = collection("ssh", [["10.0.0.1", "10.0.0.2"], ["10.1.0.1", "10.1.0.2"]])
        metrics = ground_truth_accuracy(inferred, truth)
        assert metrics == {"set_precision": 1.0, "pair_precision": 1.0, "pair_recall": 1.0}

    def test_overmerged_set_hurts_precision(self):
        truth = [frozenset({"10.0.0.1", "10.0.0.2"}), frozenset({"10.1.0.1", "10.1.0.2"})]
        inferred = collection("ssh", [["10.0.0.1", "10.0.0.2", "10.1.0.1", "10.1.0.2"]])
        metrics = ground_truth_accuracy(inferred, truth)
        assert metrics["set_precision"] == 0.0
        assert metrics["pair_precision"] == pytest.approx(2 / 6)
        assert metrics["pair_recall"] == 1.0

    def test_split_set_hurts_recall(self):
        truth = [frozenset({"10.0.0.1", "10.0.0.2", "10.0.0.3"})]
        inferred = collection("ssh", [["10.0.0.1", "10.0.0.2"], ["10.0.0.3", "10.9.0.9"]])
        metrics = ground_truth_accuracy(inferred, truth)
        assert metrics["pair_recall"] == pytest.approx(1 / 3)

    def test_empty_inference(self):
        metrics = ground_truth_accuracy(collection("ssh", [["10.0.0.1"]]), [frozenset({"10.0.0.1"})])
        assert metrics["set_precision"] == 0.0
