"""Tests for dual-stack inference."""

from repro.core.dual_stack import infer_dual_stack, union_dual_stack
from repro.simnet.device import ServiceType
from repro.sources.records import Observation


def ssh_obs(address, key):
    return Observation(
        address=address,
        protocol=ServiceType.SSH,
        source="active",
        port=22,
        fields=(
            ("banner", "SSH-2.0-OpenSSH_9.3"),
            ("capability_signature", "caps"),
            ("host_key_fingerprint", key),
        ),
    )


def snmp_obs(address, engine_id):
    return Observation(
        address=address,
        protocol=ServiceType.SNMPV3,
        source="active",
        port=161,
        fields=(("engine_boots", "1"), ("engine_id", engine_id)),
    )


class TestInference:
    def test_pairs_families_sharing_identifier(self):
        observations = [ssh_obs("10.0.0.1", "key-A"), ssh_obs("2001:db8::1", "key-A")]
        collection = infer_dual_stack(observations)
        assert len(collection) == 1
        dual = collection.sets[0]
        assert dual.ipv4_addresses == frozenset({"10.0.0.1"})
        assert dual.ipv6_addresses == frozenset({"2001:db8::1"})
        assert dual.is_one_to_one

    def test_identifier_without_both_families_is_dropped(self):
        observations = [ssh_obs("10.0.0.1", "key-A"), ssh_obs("10.0.0.2", "key-A")]
        assert len(infer_dual_stack(observations)) == 0

    def test_protocol_filter(self):
        observations = [
            ssh_obs("10.0.0.1", "key-A"),
            ssh_obs("2001:db8::1", "key-A"),
            snmp_obs("10.0.0.2", "engine-1"),
            snmp_obs("2001:db8::2", "engine-1"),
        ]
        ssh_only = infer_dual_stack(observations, protocol=ServiceType.SSH)
        assert len(ssh_only) == 1
        assert ssh_only.sets[0].protocols == frozenset({ServiceType.SSH})

    def test_size_fractions_and_one_to_one(self):
        observations = [
            ssh_obs("10.0.0.1", "key-A"),
            ssh_obs("2001:db8::1", "key-A"),
            ssh_obs("10.0.1.1", "key-B"),
            ssh_obs("10.0.1.2", "key-B"),
            ssh_obs("2001:db8::b", "key-B"),
        ]
        collection = infer_dual_stack(observations)
        fractions = collection.size_fractions()
        assert fractions["1+1"] == 0.5
        assert fractions["2-10"] == 0.5
        assert collection.one_to_one_fraction() == 0.5

    def test_address_accessors(self):
        observations = [ssh_obs("10.0.0.1", "key-A"), ssh_obs("2001:db8::1", "key-A")]
        collection = infer_dual_stack(observations)
        assert collection.ipv4_addresses() == {"10.0.0.1"}
        assert collection.ipv6_addresses() == {"2001:db8::1"}

    def test_empty_collection_fractions(self):
        collection = infer_dual_stack([])
        assert collection.one_to_one_fraction() == 0.0
        assert collection.size_fractions()[">10"] == 0.0


class TestUnion:
    def test_union_merges_sets_sharing_addresses(self):
        ssh_sets = infer_dual_stack([ssh_obs("10.0.0.1", "k"), ssh_obs("2001:db8::1", "k")], name="ssh")
        snmp_sets = infer_dual_stack(
            [snmp_obs("10.0.0.1", "e"), snmp_obs("2001:db8::9", "e")], name="snmp"
        )
        union = union_dual_stack([ssh_sets, snmp_sets])
        assert len(union) == 1
        merged = union.sets[0]
        assert merged.ipv6_addresses == frozenset({"2001:db8::1", "2001:db8::9"})
        assert merged.protocols == frozenset({ServiceType.SSH, ServiceType.SNMPV3})

    def test_union_keeps_disjoint_sets(self):
        a = infer_dual_stack([ssh_obs("10.0.0.1", "k1"), ssh_obs("2001:db8::1", "k1")], name="a")
        b = infer_dual_stack([ssh_obs("10.9.0.1", "k2"), ssh_obs("2001:db8::9", "k2")], name="b")
        union = union_dual_stack([a, b])
        assert len(union) == 2

    def test_sets_per_asn(self):
        observations = [
            Observation(
                address="10.0.0.1", protocol=ServiceType.SSH, source="active", port=22, asn=14061,
                fields=(("banner", "b"), ("capability_signature", "c"), ("host_key_fingerprint", "k")),
            ),
            Observation(
                address="2001:db8::1", protocol=ServiceType.SSH, source="active", port=22, asn=14061,
                fields=(("banner", "b"), ("capability_signature", "c"), ("host_key_fingerprint", "k")),
            ),
        ]
        collection = infer_dual_stack(observations)
        assert collection.sets_per_asn() == {14061: 1}
        assert collection.top_asns() == [(14061, 1)]
