"""Tests for host identifier extraction."""

from repro.core.identifiers import (
    IdentifierOptions,
    bgp_identifier,
    extract_identifier,
    snmp_identifier,
    ssh_identifier,
)
from repro.simnet.device import ServiceType
from repro.sources.records import Observation


def ssh_observation(address="10.0.0.1", banner="SSH-2.0-OpenSSH_9.3", caps="c" * 64, key="SHA256:k1"):
    fields = []
    if banner is not None:
        fields.append(("banner", banner))
    if caps is not None:
        fields.append(("capability_signature", caps))
    if key is not None:
        fields.append(("host_key_fingerprint", key))
    return Observation(address=address, protocol=ServiceType.SSH, source="active", port=22, fields=tuple(sorted(fields)))


def bgp_observation(address="10.0.0.2", **overrides):
    fields = {
        "bgp_identifier": "10.0.0.2",
        "asn": "3320",
        "hold_time": "180",
        "version": "4",
        "message_length": "37",
        "capabilities": "128:,2:",
    }
    fields.update(overrides)
    return Observation(
        address=address, protocol=ServiceType.BGP, source="active", port=179, fields=tuple(sorted(fields.items()))
    )


def snmp_observation(address="10.0.0.3", engine_id="80001f880301020304"):
    return Observation(
        address=address,
        protocol=ServiceType.SNMPV3,
        source="active",
        port=161,
        fields=(("engine_boots", "2"), ("engine_id", engine_id)),
    )


class TestSshIdentifier:
    def test_same_material_same_identifier(self):
        a = ssh_identifier(ssh_observation(address="10.0.0.1"))
        b = ssh_identifier(ssh_observation(address="10.0.0.2"))
        assert a == b

    def test_different_keys_different_identifiers(self):
        a = ssh_identifier(ssh_observation(key="SHA256:k1"))
        b = ssh_identifier(ssh_observation(key="SHA256:k2"))
        assert a != b

    def test_missing_key_returns_none(self):
        assert ssh_identifier(ssh_observation(key=None)) is None

    def test_missing_capabilities_returns_none_by_default(self):
        assert ssh_identifier(ssh_observation(caps=None)) is None

    def test_capabilities_split_shared_keys(self):
        # Two hosts with the same factory-default key but different algorithm
        # capabilities must receive different identifiers (paper, section 2.2).
        a = ssh_identifier(ssh_observation(caps="a" * 64))
        b = ssh_identifier(ssh_observation(caps="b" * 64))
        assert a != b

    def test_key_only_mode_merges_shared_keys(self):
        options = IdentifierOptions(ssh_include_capabilities=False, ssh_include_banner=False)
        a = ssh_identifier(ssh_observation(caps="a" * 64), options)
        b = ssh_identifier(ssh_observation(caps="b" * 64), options)
        assert a == b

    def test_banner_inclusion_toggle(self):
        options = IdentifierOptions(ssh_include_banner=False)
        a = ssh_identifier(ssh_observation(banner="SSH-2.0-OpenSSH_9.3"), options)
        b = ssh_identifier(ssh_observation(banner="SSH-2.0-OpenSSH_8.9"), options)
        assert a == b
        assert ssh_identifier(ssh_observation(banner="SSH-2.0-OpenSSH_9.3")) != ssh_identifier(
            ssh_observation(banner="SSH-2.0-OpenSSH_8.9")
        )


class TestBgpIdentifier:
    def test_same_fields_same_identifier(self):
        assert bgp_identifier(bgp_observation(address="10.0.0.2")) == bgp_identifier(
            bgp_observation(address="10.0.0.99")
        )

    def test_different_bgp_id_different_identifier(self):
        assert bgp_identifier(bgp_observation()) != bgp_identifier(
            bgp_observation(bgp_identifier="10.9.9.9")
        )

    def test_missing_open_returns_none(self):
        observation = Observation(address="10.0.0.4", protocol=ServiceType.BGP, source="active", port=179)
        assert bgp_identifier(observation) is None

    def test_hold_time_toggle(self):
        options = IdentifierOptions(bgp_include_hold_time=False)
        a = bgp_identifier(bgp_observation(hold_time="90"), options)
        b = bgp_identifier(bgp_observation(hold_time="180"), options)
        assert a == b
        assert bgp_identifier(bgp_observation(hold_time="90")) != bgp_identifier(
            bgp_observation(hold_time="180")
        )

    def test_capabilities_toggle(self):
        options = IdentifierOptions(bgp_include_capabilities=False)
        a = bgp_identifier(bgp_observation(capabilities="2:"), options)
        b = bgp_identifier(bgp_observation(capabilities="128:,2:"), options)
        assert a == b


class TestSnmpAndDispatch:
    def test_engine_id_is_the_identifier(self):
        identifier = snmp_identifier(snmp_observation())
        assert identifier.value == "80001f880301020304"

    def test_missing_engine_id_returns_none(self):
        observation = Observation(address="10.0.0.5", protocol=ServiceType.SNMPV3, source="active", port=161)
        assert snmp_identifier(observation) is None

    def test_extract_dispatches_by_protocol(self):
        assert extract_identifier(ssh_observation()).protocol is ServiceType.SSH
        assert extract_identifier(bgp_observation()).protocol is ServiceType.BGP
        assert extract_identifier(snmp_observation()).protocol is ServiceType.SNMPV3

    def test_short_rendering(self):
        identifier = extract_identifier(snmp_observation())
        assert identifier.short().startswith("snmpv3:")
