"""Property tests: the columnar core against the dict-backed reference model.

:class:`~repro.core.dictcore.DictObservationIndex` is the pre-columnar
``ObservationIndex`` implementation, kept verbatim as the correctness
oracle.  Hypothesis drives random interleavings of every public mutation —
``add`` (with and without a pre-extracted identifier), ``remove``,
``extend`` and ``merge`` — through both cores in lockstep and asserts the
observable surfaces stay identical at every step:

* ``consume_dirty`` — the same dirty-identifier sets after every operation,
* ``state_signature`` / ``export_state`` — identical decoded state,
* derived reports — :func:`~repro.core.engine.report_signature` equality
  through :class:`~repro.core.engine.ResolutionEngine` (both cores expose
  the same ``alias_sets``/``dual_stack``/``bucket_*`` surface).
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dictcore import DictObservationIndex
from repro.core.engine import ObservationIndex, ResolutionEngine, report_signature
from repro.core.identifiers import extract_identifier
from repro.simnet.device import ServiceType
from repro.sources.records import Observation

_IPV4 = [f"10.0.0.{i}" for i in range(1, 7)]
_IPV6 = [f"2001:db8::{i:x}" for i in range(1, 5)]
_DEVICES = ["alpha", "beta", "gamma"]


def _asn_for(address: str) -> int:
    """Deterministic per-address ASN (the documented stability constraint)."""
    return 65000 + sum(address.encode()) % 5


@st.composite
def _observation(draw):
    address = draw(st.sampled_from(_IPV4 + _IPV6))
    device = draw(st.sampled_from(_DEVICES))
    protocol = draw(st.sampled_from(list(ServiceType)))
    carries_identifier = draw(st.booleans())
    carries_asn = draw(st.booleans())
    if protocol is ServiceType.SSH:
        fields = (
            ("banner", "SSH-2.0-OpenSSH_9.4"),
            ("capability_signature", f"caps-{device}"),
            ("host_key_fingerprint", f"key-{device}"),
        ) if carries_identifier else ()
        port = 22
    elif protocol is ServiceType.SNMPV3:
        fields = (
            ("engine_boots", "1"),
            ("engine_id", f"engine-{device}"),
        ) if carries_identifier else ()
        port = 161
    else:
        fields = (
            ("asn", "65000"),
            ("bgp_identifier", f"198.51.100.{1 + sum(device.encode()) % 9}"),
            ("capabilities", ""),
            ("hold_time", "90"),
            ("message_length", "45"),
            ("version", "4"),
        ) if carries_identifier else ()
        port = 179
    return Observation(
        address=address,
        protocol=protocol,
        source="hypothesis",
        port=port,
        timestamp=draw(st.floats(min_value=0.0, max_value=1e6)),
        asn=_asn_for(address) if carries_asn else None,
        fields=fields,
    )


_ADD, _ADD_CACHED, _REMOVE, _EXTEND, _MERGE = range(5)

_operations = st.lists(
    st.one_of(
        st.tuples(st.just(_ADD), _observation()),
        st.tuples(st.just(_ADD_CACHED), _observation()),
        st.tuples(st.just(_REMOVE), st.integers(min_value=0, max_value=2**16)),
        st.tuples(st.just(_EXTEND), st.lists(_observation(), max_size=6)),
        st.tuples(st.just(_MERGE), st.lists(_observation(), max_size=6)),
    ),
    max_size=25,
)


def _normalise_dirty(dirty):
    return {key: values for key, values in dirty.items() if values}


def _apply(columnar, oracle, operations, seed):
    """Drive both cores through ``operations``; compare after every step."""
    rng = random.Random(seed)
    added: list[Observation] = []
    for operation, payload in operations:
        if operation == _ADD:
            assert columnar.add(payload) == oracle.add(payload)
            added.append(payload)
        elif operation == _ADD_CACHED:
            identifier = extract_identifier(payload, columnar.options)
            assert columnar.add(payload, identifier) == oracle.add(payload, identifier)
            added.append(payload)
        elif operation == _REMOVE:
            if not added:
                continue
            observation = added.pop(payload % len(added))
            assert columnar.remove(observation) == oracle.remove(observation)
        elif operation == _EXTEND:
            columnar.extend(payload)
            oracle.extend(payload)
            added.extend(payload)
        else:  # _MERGE: fold in a sub-index built from a fresh stream
            columnar.merge(ObservationIndex.build(payload, columnar.options))
            oracle.merge(DictObservationIndex.build(payload, oracle.options))
            added.extend(payload)
        if rng.random() < 0.5:
            assert _normalise_dirty(columnar.consume_dirty()) == _normalise_dirty(
                oracle.consume_dirty()
            )
        assert columnar.state_signature() == oracle.state_signature()
    return added


@settings(max_examples=60, deadline=None)
@given(operations=_operations, seed=st.integers(min_value=0, max_value=2**16))
def test_random_mutations_match_reference_model(operations, seed):
    columnar = ObservationIndex()
    oracle = DictObservationIndex()
    _apply(columnar, oracle, operations, seed)
    assert columnar.observed == oracle.observed
    assert columnar.indexed == oracle.indexed
    assert columnar.export_state() == oracle.export_state()
    assert _normalise_dirty(columnar.consume_dirty()) == _normalise_dirty(
        oracle.consume_dirty()
    )


@settings(max_examples=40, deadline=None)
@given(operations=_operations, seed=st.integers(min_value=0, max_value=2**16))
def test_derived_reports_match_reference_model(operations, seed):
    columnar = ObservationIndex()
    oracle = DictObservationIndex()
    _apply(columnar, oracle, operations, seed)
    engine = ResolutionEngine()
    assert report_signature(engine.report(columnar, name="x")) == report_signature(
        engine.report(oracle, name="x")
    )


@settings(max_examples=40, deadline=None)
@given(stream=st.lists(_observation(), max_size=20))
def test_state_roundtrip_matches_reference_model(stream):
    """export_state / from_state agree between cores, both directions."""
    columnar = ObservationIndex.build(stream)
    oracle = DictObservationIndex.build(stream)
    state = columnar.export_state()
    assert state == oracle.export_state()
    restored_columnar = ObservationIndex.from_state(state)
    restored_oracle = DictObservationIndex.from_state(state)
    assert restored_columnar.state_signature() == restored_oracle.state_signature()
    assert _normalise_dirty(restored_columnar.consume_dirty()) == _normalise_dirty(
        restored_oracle.consume_dirty()
    )


@settings(max_examples=40, deadline=None)
@given(stream=st.lists(_observation(), max_size=20))
def test_columnar_roundtrip_preserves_signature(stream):
    """export_columnar / from_columnar is lossless (the persist v2 path)."""
    columnar = ObservationIndex.build(stream)
    restored = ObservationIndex.from_columnar(columnar.export_columnar())
    assert restored.state_signature() == columnar.state_signature()
    assert restored.export_state() == columnar.export_state()
