"""Golden parity: the single-pass engine reproduces the seed pipeline.

The seed implementation walked the observation list nine times (six
per-(protocol, family) groupings plus three dual-stack passes).  The
``_seed_*`` functions below are a verbatim copy of that implementation
(commit a5c4af9); the test asserts that the :class:`ResolutionEngine`
produces a field-by-field identical :class:`AliasReport` for the paper
scenario at scale 1.0, seed 42, on all three sources.

The only intended difference is the *labelling* of the synthetic union
sets: the seed enumerated components in union-find-root order (an
implementation detail), the engine orders them canonically by smallest
member address and labels each ``union:<smallest-address>``.  The
comparison therefore canonicalises the seed's union collections the same
way before asserting exact equality.
"""

import dataclasses
from collections import defaultdict

import pytest

from repro.core.aliasset import AliasSet, AliasSetCollection
from repro.core.dual_stack import DualStackCollection, DualStackSet
from repro.core.engine import PROTOCOLS, ResolutionEngine
from repro.core.identifiers import DEFAULT_OPTIONS, extract_identifier
from repro.experiments.scenario import paper_scenario
from repro.net.addresses import AddressFamily

# --------------------------------------------------------------------- #
# Verbatim seed implementation (nine passes over the observation list)
# --------------------------------------------------------------------- #


class _SeedUnionFind:
    def __init__(self):
        self._parent = {}

    def find(self, item):
        parent = self._parent.setdefault(item, item)
        if parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, left, right):
        left_root, right_root = self.find(left), self.find(right)
        if left_root != right_root:
            self._parent[right_root] = left_root


def _seed_group(observations, protocol=None, family=None, name=None, options=DEFAULT_OPTIONS):
    by_identifier = defaultdict(set)
    protocols_by_identifier = defaultdict(set)
    address_asn = {}
    for observation in observations:
        if protocol is not None and observation.protocol is not protocol:
            continue
        if family is not None and observation.family is not family:
            continue
        identifier = extract_identifier(observation, options)
        if identifier is None:
            continue
        key = (identifier.protocol, identifier.value)
        by_identifier[key].add(observation.address)
        protocols_by_identifier[key].add(observation.protocol)
        if observation.asn is not None:
            address_asn[observation.address] = observation.asn
    collection_name = name or (protocol.value if protocol is not None else "all-protocols")
    collection = AliasSetCollection(collection_name, address_asn=address_asn)
    for key, addresses in by_identifier.items():
        _, value = key
        collection.add(
            AliasSet(
                identifier=value,
                addresses=frozenset(addresses),
                protocols=frozenset(protocols_by_identifier[key]),
            )
        )
    return collection


def _seed_union(collections, name="union"):
    union_find = _SeedUnionFind()
    contributing = []
    address_asn = {}
    for collection in collections:
        address_asn.update(collection.address_asn)
        for alias_set in collection:
            contributing.append(alias_set)
            addresses = sorted(alias_set.addresses)
            for address in addresses[1:]:
                union_find.union(addresses[0], address)
    members = defaultdict(set)
    protocols = defaultdict(set)
    for alias_set in contributing:
        if not alias_set.addresses:
            continue
        root = union_find.find(sorted(alias_set.addresses)[0])
        members[root] |= alias_set.addresses
        protocols[root] |= alias_set.protocols
    result = AliasSetCollection(name, address_asn=address_asn)
    for index, root in enumerate(sorted(members)):
        result.add(
            AliasSet(
                identifier=f"union:{index}",
                addresses=frozenset(members[root]),
                protocols=frozenset(protocols[root]),
            )
        )
    return result


def _seed_infer_dual_stack(observations, protocol=None, options=DEFAULT_OPTIONS, name=None):
    ipv4_members = defaultdict(set)
    ipv6_members = defaultdict(set)
    protocols_by_key = defaultdict(set)
    address_asn = {}
    for observation in observations:
        if protocol is not None and observation.protocol is not protocol:
            continue
        identifier = extract_identifier(observation, options)
        if identifier is None:
            continue
        key = (identifier.protocol, identifier.value)
        if observation.family is AddressFamily.IPV4:
            ipv4_members[key].add(observation.address)
        else:
            ipv6_members[key].add(observation.address)
        protocols_by_key[key].add(observation.protocol)
        if observation.asn is not None:
            address_asn[observation.address] = observation.asn
    collection = DualStackCollection(
        name or (protocol.value if protocol else "all-protocols"), address_asn=address_asn
    )
    for key in ipv4_members:
        if key not in ipv6_members:
            continue
        _, value = key
        collection.add(
            DualStackSet(
                identifier=value,
                ipv4_addresses=frozenset(ipv4_members[key]),
                ipv6_addresses=frozenset(ipv6_members[key]),
                protocols=frozenset(protocols_by_key[key]),
            )
        )
    return collection


def _seed_union_dual_stack(collections, name="union"):
    parent = {}

    def find(address):
        root = parent.setdefault(address, address)
        if root == address:
            return address
        resolved = find(root)
        parent[address] = resolved
        return resolved

    def union(left, right):
        left_root, right_root = find(left), find(right)
        if left_root != right_root:
            parent[right_root] = left_root

    contributing = []
    address_asn = {}
    for collection in collections:
        address_asn.update(collection.address_asn)
        for dual_set in collection:
            contributing.append(dual_set)
            addresses = sorted(dual_set.ipv4_addresses | dual_set.ipv6_addresses)
            for address in addresses[1:]:
                union(addresses[0], address)
    ipv4_members = defaultdict(set)
    ipv6_members = defaultdict(set)
    protocols_by_root = defaultdict(set)
    for dual_set in contributing:
        addresses = sorted(dual_set.ipv4_addresses | dual_set.ipv6_addresses)
        root = find(addresses[0])
        ipv4_members[root] |= dual_set.ipv4_addresses
        ipv6_members[root] |= dual_set.ipv6_addresses
        protocols_by_root[root] |= dual_set.protocols
    result = DualStackCollection(name, address_asn=address_asn)
    for index, root in enumerate(sorted(ipv4_members)):
        result.add(
            DualStackSet(
                identifier=f"union:{index}",
                ipv4_addresses=frozenset(ipv4_members[root]),
                ipv6_addresses=frozenset(ipv6_members[root]),
                protocols=frozenset(protocols_by_root[root]),
            )
        )
    return result


def _seed_run_alias_resolution(observations, name="dataset"):
    observation_list = list(observations)
    ipv4 = {}
    ipv6 = {}
    dual = {}
    for protocol in PROTOCOLS:
        ipv4[protocol] = _seed_group(
            observation_list, protocol=protocol, family=AddressFamily.IPV4, name=f"{name}:{protocol.value}:ipv4"
        )
        ipv6[protocol] = _seed_group(
            observation_list, protocol=protocol, family=AddressFamily.IPV6, name=f"{name}:{protocol.value}:ipv6"
        )
        dual[protocol] = _seed_infer_dual_stack(
            observation_list, protocol=protocol, name=f"{name}:{protocol.value}:dual"
        )
    return {
        "ipv4": ipv4,
        "ipv6": ipv6,
        "ipv4_union": _seed_union(ipv4.values(), name=f"{name}:union:ipv4"),
        "ipv6_union": _seed_union(ipv6.values(), name=f"{name}:union:ipv6"),
        "dual_stack": dual,
        "dual_stack_union": _seed_union_dual_stack(dual.values(), name=f"{name}:union:dual"),
    }


# --------------------------------------------------------------------- #
# Comparison helpers
# --------------------------------------------------------------------- #


def _canonical_alias_union(collection):
    """Relabel a seed union collection with canonical min-address labels."""
    ordered = sorted(collection, key=lambda alias_set: min(alias_set.addresses))
    return [
        dataclasses.replace(alias_set, identifier=f"union:{min(alias_set.addresses)}")
        for alias_set in ordered
    ]


def _canonical_dual_union(collection):
    ordered = sorted(
        collection, key=lambda dual: min(dual.ipv4_addresses | dual.ipv6_addresses)
    )
    return [
        dataclasses.replace(
            dual, identifier=f"union:{min(dual.ipv4_addresses | dual.ipv6_addresses)}"
        )
        for dual in ordered
    ]


def _assert_collections_equal(engine_collection, seed_collection):
    assert engine_collection.name == seed_collection.name
    assert list(engine_collection) == list(seed_collection)
    assert engine_collection.address_asn == seed_collection.address_asn


# --------------------------------------------------------------------- #
# The parity test proper
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def scenario():
    return paper_scenario(scale=1.0, seed=42)


@pytest.fixture(scope="module")
def reports(scenario):
    """(engine report, seed report) per source, computed once for the module."""
    built = {}
    for source in ("active", "censys", "union"):
        observations = list(scenario.observations_for(source))
        assert observations, "scenario produced no observations"
        built[source] = (
            ResolutionEngine().resolve(observations, name=source),
            _seed_run_alias_resolution(observations, name=source),
        )
    return built


@pytest.mark.parametrize("source", ["active", "censys", "union"])
def test_engine_matches_seed_pipeline(reports, source):
    engine_report, seed_report = reports[source]

    for protocol in PROTOCOLS:
        _assert_collections_equal(engine_report.ipv4[protocol], seed_report["ipv4"][protocol])
        _assert_collections_equal(engine_report.ipv6[protocol], seed_report["ipv6"][protocol])
        _assert_collections_equal(
            engine_report.dual_stack[protocol], seed_report["dual_stack"][protocol]
        )

    for attribute in ("ipv4_union", "ipv6_union"):
        engine_union = getattr(engine_report, attribute)
        seed_union = seed_report[attribute]
        assert engine_union.name == seed_union.name
        assert list(engine_union) == _canonical_alias_union(seed_union)
        assert engine_union.address_asn == seed_union.address_asn

    engine_dual = engine_report.dual_stack_union
    seed_dual = seed_report["dual_stack_union"]
    assert engine_dual.name == seed_dual.name
    assert list(engine_dual) == _canonical_dual_union(seed_dual)
    assert engine_dual.address_asn == seed_dual.address_asn


@pytest.mark.parametrize("source", ["active", "censys", "union"])
def test_engine_counts_match_seed(reports, source):
    engine_report, seed_report = reports[source]

    for family in (AddressFamily.IPV4, AddressFamily.IPV6):
        collections = seed_report["ipv4"] if family is AddressFamily.IPV4 else seed_report["ipv6"]
        union = (
            seed_report["ipv4_union"] if family is AddressFamily.IPV4 else seed_report["ipv6_union"]
        )
        expected_counts = {
            protocol.value: len(collections[protocol].non_singleton()) for protocol in PROTOCOLS
        }
        expected_counts["union"] = len(union.non_singleton())
        assert engine_report.non_singleton_counts(family) == expected_counts

        expected_covered = {
            protocol.value: len(collections[protocol].non_singleton().addresses())
            for protocol in PROTOCOLS
        }
        expected_covered["union"] = len(union.non_singleton().addresses())
        assert engine_report.covered_addresses(family) == expected_covered

    assert len(engine_report.dual_stack_union) == len(seed_report["dual_stack_union"])
