"""Tests for ObservationIndex removal, reference counts, and dirty tracking."""

import pytest

from repro.core.engine import ObservationIndex
from repro.core.identifiers import extract_identifier
from repro.errors import DatasetError
from repro.net.addresses import AddressFamily
from repro.simnet.device import ServiceType
from repro.sources.records import Observation


def snmp_observation(address, engine_id="engine-a", asn=None, timestamp=0.0):
    return Observation(
        address=address,
        protocol=ServiceType.SNMPV3,
        source="test",
        port=161,
        timestamp=timestamp,
        asn=asn,
        fields=(("engine_boots", "1"), ("engine_id", engine_id)),
    )


def bare_observation(address):
    """An observation without identifier material."""
    return Observation(
        address=address, protocol=ServiceType.BGP, source="test", port=179
    )


class TestRemoval:
    def test_remove_is_inverse_of_add(self):
        index = ObservationIndex()
        observation = snmp_observation("10.0.0.1")
        index.add(observation)
        assert index.remove(observation) is True
        assert index.observed == 0
        assert index.indexed == 0
        assert len(index.alias_sets(ServiceType.SNMPV3, AddressFamily.IPV4)) == 0

    def test_reference_counts_keep_address_until_last_copy(self):
        index = ObservationIndex()
        observation = snmp_observation("10.0.0.1")
        index.add(observation)
        index.add(observation)
        index.remove(observation)
        collection = index.alias_sets(ServiceType.SNMPV3, AddressFamily.IPV4)
        assert collection.sets[0].addresses == frozenset({"10.0.0.1"})
        index.remove(observation)
        assert len(index.alias_sets(ServiceType.SNMPV3, AddressFamily.IPV4)) == 0

    def test_address_can_leave_an_identifier_bucket(self):
        index = ObservationIndex()
        index.add(snmp_observation("10.0.0.1"))
        index.add(snmp_observation("10.0.0.2"))
        index.remove(snmp_observation("10.0.0.2"))
        collection = index.alias_sets(ServiceType.SNMPV3, AddressFamily.IPV4)
        assert collection.sets[0].addresses == frozenset({"10.0.0.1"})

    def test_remove_unknown_observation_raises(self):
        index = ObservationIndex()
        index.add(snmp_observation("10.0.0.1"))
        with pytest.raises(DatasetError):
            index.remove(snmp_observation("10.0.0.2"))

    def test_remove_identifierless_observation_returns_false(self):
        index = ObservationIndex()
        observation = bare_observation("10.0.0.1")
        assert index.add(observation) is False
        assert index.remove(observation) is False
        assert index.observed == 0

    def test_asn_mapping_dropped_with_last_asn_carrying_observation(self):
        index = ObservationIndex()
        with_asn = snmp_observation("10.0.0.1", asn=65001)
        without_asn = snmp_observation("10.0.0.1")
        index.add(with_asn)
        index.add(without_asn)
        index.remove(with_asn)
        collection = index.alias_sets(ServiceType.SNMPV3, AddressFamily.IPV4)
        # The surviving observation carried no ASN, so the mapping is gone
        # (exactly as a from-scratch build of the survivor would have it).
        assert collection.address_asn == {}
        assert collection.sets[0].addresses == frozenset({"10.0.0.1"})

    def test_precomputed_identifier_matches_internal_extraction(self):
        observation = snmp_observation("10.0.0.1")
        identifier = extract_identifier(observation)
        via_kwarg = ObservationIndex()
        via_kwarg.add(observation, identifier)
        internally = ObservationIndex()
        internally.add(observation)
        assert via_kwarg.state_signature() == internally.state_signature()
        via_kwarg.remove(observation, identifier)
        assert via_kwarg.indexed == 0


class TestDirtyTracking:
    def test_add_marks_identifier_dirty(self):
        index = ObservationIndex()
        observation = snmp_observation("10.0.0.1")
        index.add(observation)
        identifier = extract_identifier(observation)
        dirty = index.consume_dirty()
        assert dirty == {(ServiceType.SNMPV3, AddressFamily.IPV4): {identifier.value}}

    def test_consume_clears(self):
        index = ObservationIndex()
        index.add(snmp_observation("10.0.0.1"))
        index.consume_dirty()
        assert index.consume_dirty() == {}

    def test_remove_marks_dirty_again(self):
        index = ObservationIndex()
        observation = snmp_observation("10.0.0.1")
        index.add(observation)
        index.consume_dirty()
        index.remove(observation)
        dirty = index.consume_dirty()
        assert (ServiceType.SNMPV3, AddressFamily.IPV4) in dirty

    def test_consumed_dirty_is_a_snapshot(self):
        index = ObservationIndex()
        index.add(snmp_observation("10.0.0.1"))
        dirty = index.consume_dirty()
        index.add(snmp_observation("10.0.0.1", engine_id="engine-b"))
        # Later mutations must not mutate the snapshot handed out earlier.
        assert len(dirty[(ServiceType.SNMPV3, AddressFamily.IPV4)]) == 1


class TestStateSignature:
    def test_incremental_equals_from_scratch(self):
        stream = [
            snmp_observation("10.0.0.1", asn=65001),
            snmp_observation("10.0.0.2", asn=65001),
            snmp_observation("10.0.0.3", engine_id="engine-b", asn=65002),
            bare_observation("10.0.0.4"),
        ]
        incremental = ObservationIndex.build(stream)
        incremental.add(snmp_observation("10.0.0.9", engine_id="engine-c"))
        incremental.remove(snmp_observation("10.0.0.9", engine_id="engine-c"))
        incremental.remove(stream[1])
        survivors = [stream[0], stream[2], stream[3]]
        assert (
            incremental.state_signature()
            == ObservationIndex.build(survivors).state_signature()
        )

    def test_signature_ignores_insertion_order(self):
        forward = ObservationIndex.build(
            [snmp_observation("10.0.0.1"), snmp_observation("10.0.0.2")]
        )
        backward = ObservationIndex.build(
            [snmp_observation("10.0.0.2"), snmp_observation("10.0.0.1")]
        )
        assert forward.state_signature() == backward.state_signature()
