"""Property-style tests of cross-protocol union semantics.

The union step is the one place alias sets from different groupings
interact, so its algebra matters: it must be idempotent, independent of the
order collections (and sets within them) are presented in, and it must
bridge exactly the sets connected through shared addresses — no more, no
less.  The canonical ``union:<smallest-address>`` labelling makes these
properties exact equalities on the output, not just partition-level
equivalences.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.alias_resolution import AliasResolver
from repro.core.aliasset import AliasSet, AliasSetCollection
from repro.core.dual_stack import DualStackCollection, DualStackSet, union_dual_stack
from repro.simnet.device import ServiceType

# Small address universe so overlaps (bridges) actually happen.
_address = st.integers(min_value=1, max_value=25).map(lambda i: f"10.0.0.{i}")
_addresses = st.frozensets(_address, min_size=1, max_size=5)
_protocol = st.sampled_from(list(ServiceType))


def _collection(name, sets):
    collection = AliasSetCollection(name)
    for index, (addresses, protocol) in enumerate(sets):
        collection.add(
            AliasSet(
                identifier=f"{name}:{index}",
                addresses=addresses,
                protocols=frozenset((protocol,)),
            )
        )
    return collection


_collection_sets = st.lists(st.tuples(_addresses, _protocol), max_size=8)
_collections = st.lists(_collection_sets, min_size=1, max_size=4).map(
    lambda groups: [_collection(f"c{i}", sets) for i, sets in enumerate(groups)]
)


def _expected_partition(collections):
    """Brute-force reference: merge overlapping sets to a fixpoint.

    Deliberately avoids the union-find used by the implementation — a
    quadratic repeated-merge converges to the same transitive closure and
    serves as an independent oracle.
    """
    components = [
        (set(alias_set.addresses), set(alias_set.protocols))
        for collection in collections
        for alias_set in collection
        if alias_set.addresses
    ]
    changed = True
    while changed:
        changed = False
        merged: list[tuple[set, set]] = []
        for addresses, protocols in components:
            for existing_addresses, existing_protocols in merged:
                if existing_addresses & addresses:
                    existing_addresses |= addresses
                    existing_protocols |= protocols
                    changed = True
                    break
            else:
                merged.append((addresses, protocols))
        components = merged
    return {
        (frozenset(addresses), frozenset(protocols))
        for addresses, protocols in components
    }


@settings(max_examples=80, deadline=None)
@given(collections=_collections)
def test_union_is_idempotent(collections):
    once = AliasResolver.union(collections, name="u")
    twice = AliasResolver.union([once], name="u")
    assert list(twice) == list(once)
    assert twice.address_asn == once.address_asn


@settings(max_examples=80, deadline=None)
@given(collections=_collections, seed=st.integers(min_value=0, max_value=2**16))
def test_union_is_order_independent(collections, seed):
    baseline = AliasResolver.union(collections, name="u")
    rng = random.Random(seed)
    shuffled_collections = []
    for collection in collections:
        sets = collection.sets
        rng.shuffle(sets)
        shuffled_collections.append(
            AliasSetCollection(collection.name, sets, collection.address_asn)
        )
    rng.shuffle(shuffled_collections)
    reordered = AliasResolver.union(shuffled_collections, name="u")
    assert list(reordered) == list(baseline)


@settings(max_examples=80, deadline=None)
@given(collections=_collections)
def test_union_bridges_exactly_the_transitive_closure(collections):
    union = AliasResolver.union(collections, name="u")
    assert {
        (alias_set.addresses, alias_set.protocols) for alias_set in union
    } == _expected_partition(collections)


def test_union_bridges_chained_sets_across_collections():
    # {a,b} and {c,d} only touch through {b,c}: all four must merge.
    first = _collection("first", [(frozenset({"10.0.0.1", "10.0.0.2"}), ServiceType.SSH)])
    second = _collection("second", [(frozenset({"10.0.0.2", "10.0.0.3"}), ServiceType.BGP)])
    third = _collection("third", [(frozenset({"10.0.0.3", "10.0.0.4"}), ServiceType.SNMPV3)])
    union = AliasResolver.union([first, second, third])
    assert len(union) == 1
    merged = union.sets[0]
    assert merged.addresses == frozenset({f"10.0.0.{i}" for i in (1, 2, 3, 4)})
    assert merged.protocols == frozenset(ServiceType)


# --------------------------------------------------------------------- #
# Dual-stack union shares the same algebra
# --------------------------------------------------------------------- #

_ipv6 = st.integers(min_value=1, max_value=25).map(lambda i: f"2001:db8::{i:x}")
_dual_sets = st.lists(
    st.tuples(
        st.frozensets(_address, min_size=1, max_size=3),
        st.frozensets(_ipv6, min_size=1, max_size=3),
        _protocol,
    ),
    max_size=6,
)


def _dual_collection(name, sets):
    collection = DualStackCollection(name)
    for index, (ipv4_addresses, ipv6_addresses, protocol) in enumerate(sets):
        collection.add(
            DualStackSet(
                identifier=f"{name}:{index}",
                ipv4_addresses=ipv4_addresses,
                ipv6_addresses=ipv6_addresses,
                protocols=frozenset((protocol,)),
            )
        )
    return collection


_dual_collections = st.lists(_dual_sets, min_size=1, max_size=3).map(
    lambda groups: [_dual_collection(f"d{i}", sets) for i, sets in enumerate(groups)]
)


@settings(max_examples=60, deadline=None)
@given(collections=_dual_collections)
def test_dual_union_is_idempotent(collections):
    once = union_dual_stack(collections, name="u")
    twice = union_dual_stack([once], name="u")
    assert list(twice) == list(once)


@settings(max_examples=60, deadline=None)
@given(collections=_dual_collections)
def test_dual_union_is_order_independent(collections):
    baseline = union_dual_stack(collections, name="u")
    reordered = union_dual_stack(list(reversed(collections)), name="u")
    assert list(reordered) == list(baseline)


def test_dual_union_skips_empty_sets():
    # An empty DualStackSet is constructible through the public dataclass;
    # the union must skip it rather than crash computing min() of no addresses.
    empty = DualStackSet(
        identifier="empty",
        ipv4_addresses=frozenset(),
        ipv6_addresses=frozenset(),
        protocols=frozenset((ServiceType.SSH,)),
    )
    collection = DualStackCollection("d", [empty])
    assert len(union_dual_stack([collection], name="u")) == 0


@settings(max_examples=60, deadline=None)
@given(collections=_dual_collections)
def test_dual_union_never_loses_addresses(collections):
    union = union_dual_stack(collections, name="u")
    expected_ipv4 = set().union(*(c.ipv4_addresses() for c in collections))
    expected_ipv6 = set().union(*(c.ipv6_addresses() for c in collections))
    assert union.ipv4_addresses() == expected_ipv4
    assert union.ipv6_addresses() == expected_ipv6
