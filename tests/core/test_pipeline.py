"""End-to-end tests: scan the simulated Internet, infer aliases, check accuracy."""

import pytest

from repro.core.pipeline import run_alias_resolution
from repro.core.validation import cross_validate, ground_truth_accuracy
from repro.net.addresses import AddressFamily
from repro.simnet.device import ServiceType
from repro.simnet.topology import generate_topology, small_topology_config
from repro.sources.active import ActiveMeasurement
from repro.sources.hitlist import HitlistConfig, build_ipv6_hitlist


@pytest.fixture(scope="module")
def network():
    config = small_topology_config(
        seed=47,
        loss_rate=0.0,
        cloud_rate_limited_fraction=0.0,
        isp_rate_limited_fraction=0.0,
        churn_fraction=0.0,
    )
    return generate_topology(config)


@pytest.fixture(scope="module")
def observations(network):
    active = ActiveMeasurement(network, seed=3)
    dataset = active.run_ipv4()
    hitlist = build_ipv6_hitlist(network, HitlistConfig(seed=4))
    dataset.extend(active.run_ipv6(hitlist, start_time=10_000.0))
    return dataset


@pytest.fixture(scope="module")
def report(observations):
    return run_alias_resolution(observations, name="active")


class TestReportStructure:
    def test_all_protocols_present(self, report):
        for protocol in (ServiceType.SSH, ServiceType.BGP, ServiceType.SNMPV3):
            assert protocol in report.ipv4
            assert protocol in report.ipv6
            assert protocol in report.dual_stack

    def test_non_singleton_counts_consistent(self, report):
        counts = report.non_singleton_counts(AddressFamily.IPV4)
        assert counts["union"] >= max(counts["ssh"], counts["bgp"], counts["snmpv3"])
        assert counts["ssh"] > 0
        assert counts["snmpv3"] > 0

    def test_union_covers_at_least_each_protocol(self, report):
        union_addresses = report.ipv4_union.addresses()
        for protocol in (ServiceType.SSH, ServiceType.BGP, ServiceType.SNMPV3):
            assert report.ipv4[protocol].addresses() <= union_addresses

    def test_dual_stack_sets_found(self, report):
        assert len(report.dual_stack[ServiceType.SSH]) > 0
        assert len(report.dual_stack_union) >= len(report.dual_stack[ServiceType.SSH])

    def test_covered_addresses_counts(self, report):
        covered = report.covered_addresses(AddressFamily.IPV4)
        assert covered["union"] >= covered["ssh"]


class TestInferenceAccuracy:
    def test_snmp_sets_match_ground_truth_exactly(self, network, report):
        # SNMPv3 engine IDs are unique per device in the generated topology,
        # so every non-singleton SNMPv3 set must be a subset of one true set.
        truth = network.ground_truth_alias_sets()
        metrics = ground_truth_accuracy(report.ipv4[ServiceType.SNMPV3], truth)
        assert metrics["set_precision"] == 1.0

    def test_ssh_sets_high_precision(self, network, report):
        truth = network.ground_truth_alias_sets()
        metrics = ground_truth_accuracy(report.ipv4[ServiceType.SSH], truth)
        # Factory-default keys are split by capability signatures, but a few
        # same-vendor devices can still collide; precision stays high.
        assert metrics["set_precision"] > 0.9

    def test_bgp_sets_high_precision(self, network, report):
        truth = network.ground_truth_alias_sets()
        metrics = ground_truth_accuracy(report.ipv4[ServiceType.BGP], truth)
        assert metrics["set_precision"] > 0.8

    def test_dual_stack_pairs_are_true_devices(self, network, report):
        truth_owner = {}
        for device in network.devices():
            for address in device.addresses():
                truth_owner[address] = device.device_id
        collection = report.dual_stack[ServiceType.SSH]
        correct = 0
        for dual in collection:
            owners = {truth_owner.get(address) for address in dual.ipv4_addresses | dual.ipv6_addresses}
            if len(owners) == 1:
                correct += 1
        assert correct / len(collection) > 0.9

    def test_cross_protocol_validation_agrees(self, report):
        result = cross_validate(report.ipv4[ServiceType.SSH], report.ipv4[ServiceType.SNMPV3])
        if result.sample_size:
            assert result.agreement_rate > 0.8
