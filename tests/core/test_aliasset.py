"""Tests for alias-set data structures."""

from repro.core.aliasset import AliasSet, AliasSetCollection
from repro.simnet.device import ServiceType


def make_set(identifier, addresses, protocols=(ServiceType.SSH,)):
    return AliasSet(identifier=identifier, addresses=frozenset(addresses), protocols=frozenset(protocols))


class TestAliasSet:
    def test_size_and_singleton(self):
        assert make_set("a", ["10.0.0.1"]).is_singleton
        assert make_set("b", ["10.0.0.1", "10.0.0.2"]).size == 2

    def test_family_split_and_dual_stack(self):
        mixed = make_set("c", ["10.0.0.1", "2001:db8::1"])
        assert mixed.ipv4_addresses() == frozenset({"10.0.0.1"})
        assert mixed.ipv6_addresses() == frozenset({"2001:db8::1"})
        assert mixed.is_dual_stack
        assert not make_set("d", ["10.0.0.1", "10.0.0.2"]).is_dual_stack

    def test_restricted_to(self):
        alias_set = make_set("e", ["10.0.0.1", "10.0.0.2", "10.0.0.3"])
        assert alias_set.restricted_to({"10.0.0.2", "10.0.0.9"}) == frozenset({"10.0.0.2"})


class TestAliasSetCollection:
    def build(self):
        return AliasSetCollection(
            "test",
            [
                make_set("id1", ["10.0.0.1", "10.0.0.2"]),
                make_set("id2", ["10.1.0.1"]),
                make_set("id3", ["10.2.0.1", "10.2.0.2", "10.3.0.1"]),
            ],
            address_asn={
                "10.0.0.1": 100,
                "10.0.0.2": 100,
                "10.1.0.1": 200,
                "10.2.0.1": 300,
                "10.2.0.2": 300,
                "10.3.0.1": 400,
            },
        )

    def test_len_and_iteration(self):
        collection = self.build()
        assert len(collection) == 3
        assert len(collection.sets) == 3

    def test_non_singleton(self):
        collection = self.build().non_singleton()
        assert len(collection) == 2
        assert all(not alias_set.is_singleton for alias_set in collection)

    def test_addresses_and_sizes(self):
        collection = self.build()
        assert len(collection.addresses()) == 6
        assert sorted(collection.sizes()) == [1, 2, 3]
        assert collection.size_histogram()[2] == 1

    def test_asns_per_set(self):
        collection = self.build()
        assert sorted(collection.asns_per_set()) == [1, 1, 2]

    def test_sets_per_asn_counts_sets_not_addresses(self):
        counter = self.build().sets_per_asn()
        assert counter[100] == 1
        assert counter[300] == 1
        assert counter[400] == 1

    def test_top_asns(self):
        collection = self.build()
        top = collection.top_asns(2)
        assert len(top) == 2
        assert all(isinstance(asn, int) and count >= 1 for asn, count in top)

    def test_filter(self):
        collection = self.build().filter(lambda s: s.size >= 3)
        assert len(collection) == 1

    def test_asn_of_and_merged_mapping(self):
        collection = self.build()
        other = AliasSetCollection("other", [], {"10.9.0.1": 999})
        merged = collection.merged_address_asn(other)
        assert merged["10.9.0.1"] == 999
        assert collection.asn_of("10.0.0.1") == 100
        assert collection.asn_of("10.254.0.1") is None
