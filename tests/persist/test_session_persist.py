"""Session persistence: caches survive across processes, byte-faithfully."""

import json
import subprocess
import sys
from pathlib import Path

import pytest

from repro.api.config import ScenarioConfig
from repro.api.session import ReproSession
from repro.api.sources import SourceSpec, concat, file_source, union_of
from repro.core.engine import report_signature
from repro.core.identifiers import IdentifierOptions
from repro.errors import PersistError
from repro.persist.report import (
    report_from_document,
    report_signature_digest,
    report_to_document,
)
from repro.persist.session import (
    SESSION_MANIFEST,
    load_session,
    save_session,
    spec_from_document,
    spec_to_document,
)

_CONFIG = ScenarioConfig(scale=0.05, seed=7)


@pytest.fixture(scope="module")
def saved(tmp_path_factory):
    """One session with warm caches, saved once for the whole module."""
    session = ReproSession(_CONFIG)
    session.dataset("censys")
    session.report("active")
    directory = tmp_path_factory.mktemp("session") / "saved"
    save_session(session, directory)
    return session, directory


class TestSpecDocuments:
    def test_roundtrip_simple(self):
        spec = SourceSpec.create("active-ipv4", seed_offset=3, start_time=1.5)
        assert spec_from_document(spec_to_document(spec)) == spec

    def test_roundtrip_nested(self):
        spec = concat(
            union_of(SourceSpec(kind="active-ipv4"), SourceSpec(kind="censys-ipv4")),
            file_source("/data/archive.jsonl", label="archive"),
            label="combined",
        )
        assert spec_from_document(spec_to_document(spec)) == spec

    def test_param_types_survive(self):
        spec = SourceSpec.create("x", a=True, b=1, c=1.5, d="s")
        loaded = spec_from_document(json.loads(json.dumps(spec_to_document(spec))))
        assert loaded == spec
        assert [type(value) for _, value in loaded.params] == [bool, int, float, str]


class TestReportDocuments:
    def test_roundtrip_signature(self, saved):
        session, _ = saved
        report = session.report("active")
        loaded = report_from_document(
            json.loads(json.dumps(report_to_document(report)))
        )
        assert report_signature(loaded) == report_signature(report)
        assert report_signature_digest(loaded) == report_signature_digest(report)

    def test_tampered_report_fails_parity(self, saved):
        session, _ = saved
        document = report_to_document(session.report("active"))
        document["name"] = "tampered"
        with pytest.raises(PersistError, match="parity"):
            report_from_document(document)


class TestSessionRoundTrip:
    def test_caches_primed(self, saved):
        session, directory = saved
        loaded = load_session(directory)
        assert loaded.config == session.config
        assert loaded.options == session.options
        assert set(loaded.cached_datasets()) == set(session.cached_datasets())
        assert set(loaded.cached_reports()) == set(session.cached_reports())

    def test_datasets_identical(self, saved):
        session, directory = saved
        loaded = load_session(directory)
        for spec, dataset in session.cached_datasets().items():
            restored = loaded.cached_datasets()[spec]
            assert restored.name == dataset.name
            assert list(restored) == list(dataset)

    def test_cached_report_identical_without_rebuild(self, saved):
        session, directory = saved
        loaded = load_session(directory)
        # The loaded session must not re-collect: drop the network so any
        # rebuild attempt would produce a *different* network object and
        # (with a different seed) different data. report() must come from
        # the primed cache alone.
        report = loaded.report("active")
        assert report_signature(report) == report_signature(session.report("active"))

    def test_uncached_composition_still_resolves(self, saved):
        session, directory = saved
        loaded = load_session(directory)
        # "censys" resolves over the cached raw dataset through the
        # standard-ports combinator — collection never re-runs, and the
        # result matches the live session's.
        assert report_signature(loaded.report("censys")) == report_signature(
            session.report("censys")
        )

    def test_save_via_session_method(self, tmp_path):
        session = ReproSession(_CONFIG, IdentifierOptions(ssh_include_banner=False))
        session.save(tmp_path / "s")
        loaded = ReproSession.load(tmp_path / "s")
        assert loaded.options == session.options

    def test_subclass_loads_as_itself(self, saved):
        from repro.experiments.scenario import PaperScenario

        _, directory = saved
        loaded = PaperScenario.load(directory)
        assert isinstance(loaded, PaperScenario)
        # subclass sugar works on the restored caches
        assert len(loaded.censys_ipv4) > 0

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(PersistError, match=SESSION_MANIFEST):
            load_session(tmp_path)

    @staticmethod
    def _copy_session(directory, destination):
        destination.mkdir()
        for path in directory.rglob("*"):
            target = destination / path.relative_to(directory)
            if path.is_dir():
                target.mkdir(parents=True, exist_ok=True)
            else:
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_bytes(path.read_bytes())
        return destination

    def test_count_mismatch_raises(self, saved, tmp_path):
        _, directory = saved
        copy = self._copy_session(directory, tmp_path / "copy")
        manifest = json.loads((copy / SESSION_MANIFEST).read_text())
        manifest["datasets"][0]["count"] += 1
        (copy / SESSION_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(PersistError, match="observations"):
            load_session(copy)

    def test_dataset_name_mismatch_detected(self, saved, tmp_path):
        # A torn save pairing an old manifest with a new dataset file: the
        # file's header name no longer matches the manifest pin.
        _, directory = saved
        copy = self._copy_session(directory, tmp_path / "torn-dataset")
        manifest = json.loads((copy / SESSION_MANIFEST).read_text())
        manifest["datasets"][0]["name"] = "stale-name"
        (copy / SESSION_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(PersistError, match="torn mid-save"):
            load_session(copy)

    def test_report_signature_mismatch_detected(self, saved, tmp_path):
        # A torn save pairing an old manifest with a new report file: the
        # file is internally consistent, but its signature differs from the
        # manifest pin.
        _, directory = saved
        copy = self._copy_session(directory, tmp_path / "torn-report")
        manifest = json.loads((copy / SESSION_MANIFEST).read_text())
        manifest["reports"][0]["signature"] = "0" * 64
        (copy / SESSION_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(PersistError, match="torn mid-save"):
            load_session(copy)


class TestFreshProcessParity:
    def test_loaded_session_matches_in_fresh_process(self, saved, tmp_path):
        """Save → load in a *new interpreter* → identical experiment text.

        The scale-1.0 variant of this check is the persistence benchmark;
        here a small scenario proves the cross-process contract in the
        test suite.
        """
        session, directory = saved
        rendered = session.run_experiment("table3")
        signature = report_signature_digest(session.report("active"))
        script = tmp_path / "replay.py"
        script.write_text(
            "import sys, json\n"
            "from repro.api.session import ReproSession\n"
            "from repro.persist.report import report_signature_digest\n"
            "session = ReproSession.load(sys.argv[1])\n"
            "print(json.dumps({\n"
            "    'table3': session.run_experiment('table3'),\n"
            "    'signature': report_signature_digest(session.report('active')),\n"
            "}))\n"
        )
        result = subprocess.run(
            [sys.executable, str(script), str(directory)],
            capture_output=True,
            text=True,
            check=True,
            env={"PYTHONPATH": str(Path(__file__).resolve().parents[2] / "src")},
        )
        payload = json.loads(result.stdout)
        assert payload["table3"] == rendered
        assert payload["signature"] == signature


class TestFileSourceKind:
    def test_file_spec_loads_dataset(self, saved):
        session, directory = saved
        # any saved dataset file works; take the first manifest entry
        manifest = json.loads((directory / SESSION_MANIFEST).read_text())
        entry = manifest["datasets"][0]
        fresh = ReproSession(_CONFIG)
        dataset = fresh.dataset(file_source(directory / entry["file"]))
        original = session.cached_datasets()[spec_from_document(entry["spec"])]
        assert dataset.name == original.name
        assert list(dataset) == list(original)

    def test_label_overrides_header_name(self, saved):
        _, directory = saved
        manifest = json.loads((directory / SESSION_MANIFEST).read_text())
        entry = manifest["datasets"][0]
        fresh = ReproSession(_CONFIG)
        dataset = fresh.dataset(file_source(directory / entry["file"], label="renamed"))
        assert dataset.name == "renamed"

    def test_file_source_composes_with_live_sources(self, saved):
        session, directory = saved
        manifest = json.loads((directory / SESSION_MANIFEST).read_text())
        by_kind = {
            spec_from_document(entry["spec"]).kind: entry for entry in manifest["datasets"]
        }
        censys_entry = by_kind["censys-ipv4"]
        fresh = ReproSession(_CONFIG)
        composed = union_of(
            SourceSpec(kind="active-ipv4"),
            file_source(directory / censys_entry["file"]),
            label="union",
        )
        live = union_of(
            SourceSpec(kind="active-ipv4"), SourceSpec(kind="censys-ipv4"), label="union"
        )
        assert report_signature(fresh.report(composed, name="u")) == report_signature(
            session.report(live, name="u")
        )

    def test_missing_path_param_raises(self):
        from repro.errors import DatasetError

        fresh = ReproSession(_CONFIG)
        with pytest.raises(DatasetError, match="path"):
            fresh.dataset(SourceSpec(kind="file"))
