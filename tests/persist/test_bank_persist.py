"""Validation sample-bank persistence: signed documents, zero-probe reloads."""

import json
import random

import pytest

from repro.api.config import ScenarioConfig
from repro.api.session import ReproSession
from repro.errors import PersistError
from repro.net.ipid import MonotonicIpidCounter, RandomIpidCounter
from repro.persist.bank import (
    BANK_FORMAT_VERSION,
    bank_state_from_document,
    bank_state_signature,
    bank_state_to_document,
)
from repro.persist.session import SESSION_MANIFEST
from repro.simnet.asn import AsRegistry, AsRole, AutonomousSystem
from repro.simnet.device import Device, DeviceRole, Interface
from repro.simnet.network import SimulatedInternet
from repro.validation.bank import IpidSampleBank
from repro.validation.runner import ValidationRun, run_validator
from repro.validation.spec import midar

_CONFIG = ScenarioConfig(scale=0.05, seed=7)

TRUE_SET = frozenset({"10.7.1.1", "10.7.1.2", "10.7.1.3"})
FALSE_SET = frozenset({"10.7.1.1", "10.7.2.1"})


def build_network():
    registry = AsRegistry()
    registry.add(AutonomousSystem(asn=300, name="ISP", role=AsRole.ISP))
    devices = [
        Device(
            device_id="shared",
            role=DeviceRole.CORE_ROUTER,
            home_asn=300,
            interfaces=[
                Interface(name="a", address="10.7.1.1", asn=300),
                Interface(name="b", address="10.7.1.2", asn=300),
                Interface(name="c", address="10.7.1.3", asn=300),
            ],
            ipid_counter=MonotonicIpidCounter(start=700, velocity=5.0, jitter=0),
        ),
        Device(
            device_id="other",
            role=DeviceRole.CORE_ROUTER,
            home_asn=300,
            interfaces=[Interface(name="a", address="10.7.2.1", asn=300)],
            ipid_counter=MonotonicIpidCounter(start=20000, velocity=5.0, jitter=0),
        ),
        Device(
            device_id="random",
            role=DeviceRole.SERVER,
            home_asn=300,
            interfaces=[Interface(name="a", address="10.7.3.1", asn=300)],
            ipid_counter=RandomIpidCounter(rng=random.Random(3)),
        ),
    ]
    return SimulatedInternet(registry=registry, devices=devices, seed=1, loss_rate=0.0)


def _warm_run():
    """A validation run whose bank holds series, pairs and estimation keys."""
    run = ValidationRun(build_network())
    run_validator(
        run,
        midar(vantage_name="bank-persist", vantage_address="192.0.2.31"),
        candidates=(TRUE_SET, FALSE_SET),
        start_time=0.0,
    )
    return run


def _count_probes(network):
    counter = {"probes": 0}
    original = network.sample_ipid

    def counting(address, vantage, now=0.0):
        counter["probes"] += 1
        return original(address, vantage, now=now)

    network.sample_ipid = counting
    return counter


class TestBankDocuments:
    def test_round_trip_through_json(self):
        run = _warm_run()
        (bank,) = run.banks().values()
        state = bank.export_state()
        document = json.loads(json.dumps(bank_state_to_document(state)))
        assert document["version"] == BANK_FORMAT_VERSION
        assert bank_state_from_document(document) == state

    def test_restored_bank_answers_offline(self):
        run = _warm_run()
        (bank,) = run.banks().values()
        document = json.loads(json.dumps(bank_state_to_document(bank.export_state())))
        fresh_network = build_network()
        counter = _count_probes(fresh_network)
        restored = IpidSampleBank.from_state(
            fresh_network, bank_state_from_document(document)
        )
        assert restored.probes_issued == bank.probes_issued
        pair = sorted(TRUE_SET)[:2]
        assert restored.cached_interleaved(pair[0], pair[1]) is not None
        assert counter["probes"] == 0

    def test_tampered_state_fails_signature(self):
        run = _warm_run()
        (bank,) = run.banks().values()
        document = bank_state_to_document(bank.export_state())
        document["state"]["probes_issued"] += 1
        with pytest.raises(PersistError, match="signature"):
            bank_state_from_document(document)

    def test_unsupported_version_rejected(self):
        run = _warm_run()
        (bank,) = run.banks().values()
        document = bank_state_to_document(bank.export_state())
        document["version"] = BANK_FORMAT_VERSION + 1
        with pytest.raises(PersistError, match="version"):
            bank_state_from_document(document)

    def test_malformed_documents_rejected(self):
        with pytest.raises(PersistError, match="malformed"):
            bank_state_from_document({"version": BANK_FORMAT_VERSION})
        with pytest.raises(PersistError, match="not an object"):
            bank_state_from_document(
                {"version": BANK_FORMAT_VERSION, "state": 3, "signature": "x"}
            )
        with pytest.raises(PersistError, match="lacks"):
            bank_state_from_document(
                {
                    "version": BANK_FORMAT_VERSION,
                    "state": {"vantage": {}},
                    "signature": bank_state_signature({"vantage": {}}),
                }
            )

    def test_signature_is_canonical_over_key_order(self):
        state = {"b": 1, "a": {"y": 2, "x": 3}}
        reordered = {"a": {"x": 3, "y": 2}, "b": 1}
        assert bank_state_signature(state) == bank_state_signature(reordered)


@pytest.fixture(scope="module")
def saved_session(tmp_path_factory):
    """A session that validated once, then saved — banks and all."""
    session = ReproSession(_CONFIG)
    result = session.validate_budgeted(["midar"])
    directory = tmp_path_factory.mktemp("bank-session") / "saved"
    session.save(directory)
    return session, result, directory


class TestSessionBankRoundTrip:
    def test_manifest_carries_banks(self, saved_session):
        _, _, directory = saved_session
        manifest = json.loads((directory / SESSION_MANIFEST).read_text())
        assert manifest["banks"], "no bank documents were saved"
        for entry in manifest["banks"]:
            assert (directory / entry["file"]).exists()

    def test_reload_rescores_with_zero_probes(self, saved_session):
        _, result, directory = saved_session
        loaded = ReproSession.load(directory)
        counter = _count_probes(loaded.network)
        reloaded = loaded.validate_budgeted(["midar"])
        assert counter["probes"] == 0, "a reloaded session re-probed banked schedules"
        (before,) = result.reports
        (after,) = reloaded.reports
        assert [
            (v.candidate, v.testable, v.agrees, v.partition) for v in before.verdicts
        ] == [(v.candidate, v.testable, v.agrees, v.partition) for v in after.verdicts]

    def test_bank_pin_mismatch_detected(self, saved_session, tmp_path):
        _, _, directory = saved_session
        copy = tmp_path / "torn"
        copy.mkdir()
        for path in directory.rglob("*"):
            target = copy / path.relative_to(directory)
            if path.is_dir():
                target.mkdir(parents=True, exist_ok=True)
            else:
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_bytes(path.read_bytes())
        manifest = json.loads((copy / SESSION_MANIFEST).read_text())
        manifest["banks"][0]["signature"] = "0" * 64
        (copy / SESSION_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(PersistError, match="torn mid-save"):
            ReproSession.load(copy)

    def test_manifest_without_banks_still_loads(self, saved_session, tmp_path):
        # Back-compat: sessions saved before bank persistence existed.
        _, _, directory = saved_session
        copy = tmp_path / "old-format"
        copy.mkdir()
        for path in directory.rglob("*"):
            target = copy / path.relative_to(directory)
            if path.is_dir():
                target.mkdir(parents=True, exist_ok=True)
            else:
                target.parent.mkdir(parents=True, exist_ok=True)
                target.write_bytes(path.read_bytes())
        manifest = json.loads((copy / SESSION_MANIFEST).read_text())
        del manifest["banks"]
        (copy / SESSION_MANIFEST).write_text(json.dumps(manifest))
        loaded = ReproSession.load(copy)
        assert loaded.validation_bank_states() == []


class TestCheckpointerBanks:
    def test_campaign_checkpoint_round_trips_banks(self, tmp_path):
        from repro.persist.campaign import CampaignCheckpointer, load_checkpoint

        run = _warm_run()
        campaign = ReproSession(_CONFIG).longitudinal(snapshots=2, churn_fraction=0.05)
        directory = tmp_path / "campaign"
        campaign.run(
            checkpointer=CampaignCheckpointer(directory, _CONFIG, validation_run=run)
        )
        checkpoint = load_checkpoint(directory)
        assert len(checkpoint.bank_states) == 1
        restored = ValidationRun(build_network())
        bank = restored.restore_bank(checkpoint.bank_states[0])
        assert bank.probes_issued == next(iter(run.banks().values())).probes_issued

    def test_stream_checkpoint_round_trips_banks(self, tmp_path):
        from repro.persist.stream import StreamCheckpointer, load_stream_checkpoint
        from repro.stream.daemon import DaemonConfig, StreamDaemon
        from repro.stream.engine import StreamConfig, StreamingEngine

        run = _warm_run()
        campaign = ReproSession(_CONFIG).longitudinal(snapshots=2, churn_fraction=0.05)
        directory = tmp_path / "stream"
        daemon = StreamDaemon(
            campaign,
            StreamingEngine(StreamConfig(), options=campaign.options),
            config=DaemonConfig(max_polls=2),
            checkpointer=StreamCheckpointer(directory, _CONFIG, validation_run=run),
        )
        daemon.run()
        checkpoint = load_stream_checkpoint(directory)
        assert len(checkpoint.bank_states) == 1
        restored = ValidationRun(build_network())
        bank = restored.restore_bank(checkpoint.bank_states[0])
        assert bank.probes_reused == next(iter(run.banks().values())).probes_reused
