"""Tests for validation-report persistence (documents and session round-trips)."""

import json

import pytest

from repro.api.config import ScenarioConfig
from repro.api.session import ReproSession
from repro.errors import PersistError
from repro.persist.validation import (
    validation_from_document,
    validation_signature_digest,
    validation_to_document,
    validator_spec_from_document,
    validator_spec_to_document,
)
from repro.validation.report import SetVerdict, ValidationReport
from repro.validation.spec import midar, sample


def _report():
    spec = sample(midar(protocol="ssh"), size=2, seed=1, max_size=10)
    verdicts = (
        SetVerdict(
            candidate=frozenset({"10.0.1.1", "10.0.1.2"}),
            testable=True,
            agrees=True,
            partition=(frozenset({"10.0.1.1", "10.0.1.2"}),),
            classes=(("10.0.1.1", "usable"), ("10.0.1.2", "usable")),
            started_at=10.0,
            finished_at=70.0,
        ),
        SetVerdict(
            candidate=frozenset({"10.0.4.1", "10.0.4.2"}),
            testable=False,
            agrees=False,
            partition=(),
            classes=(("10.0.4.1", "non_monotonic"), ("10.0.4.2", "non_monotonic")),
            started_at=70.0,
            finished_at=102.0,
        ),
    )
    return ValidationReport(
        validator="midar",
        spec=spec,
        candidates=2,
        verdicts=verdicts,
        probes_issued=64,
        probes_reused=12,
        started_at=10.0,
        finished_at=102.0,
    )


class TestValidatorSpecDocuments:
    def test_round_trip(self):
        spec = sample(midar(protocol="ssh", start_after="active-ipv6"), size=5, seed=2)
        assert validator_spec_from_document(validator_spec_to_document(spec)) == spec

    def test_malformed_document_raises(self):
        with pytest.raises(PersistError, match="malformed validator spec"):
            validator_spec_from_document({"params": []})


class TestValidationDocuments:
    def test_round_trip_is_equal(self):
        report = _report()
        restored = validation_from_document(validation_to_document(report))
        assert restored == report

    def test_signature_stable_across_round_trip(self):
        report = _report()
        document = validation_to_document(report)
        assert document["signature"] == validation_signature_digest(report)
        # JSON-serialise and parse back, as the session store does.
        reparsed = json.loads(json.dumps(document))
        assert validation_from_document(reparsed) == report

    def test_tampered_verdict_fails_signature(self):
        document = validation_to_document(_report())
        document["verdicts"][0]["agrees"] = False
        with pytest.raises(PersistError, match="signature parity"):
            validation_from_document(document)

    def test_unsupported_version_rejected(self):
        document = validation_to_document(_report())
        document["version"] = 99
        with pytest.raises(PersistError, match="unsupported validation document"):
            validation_from_document(document)

    def test_malformed_document_raises(self):
        with pytest.raises(PersistError, match="malformed validation document"):
            validation_from_document({"version": 1, "validator": "midar"})


class TestSessionValidationRoundTrip:
    def test_save_load_primes_validation_cache(self, tmp_path):
        session = ReproSession(ScenarioConfig(scale=0.05, seed=3))
        live = session.validate("midar")
        session.save(tmp_path / "session")

        restored = ReproSession.load(tmp_path / "session")
        assert restored.cached_validations() == session.cached_validations()
        # The restored report is served from the cache, not re-probed.
        assert restored.validate("midar") == live

    def test_torn_validation_file_detected(self, tmp_path):
        session = ReproSession(ScenarioConfig(scale=0.05, seed=3))
        session.validate("midar")
        directory = tmp_path / "session"
        session.save(directory)
        manifest = json.loads((directory / "session.json").read_text())
        (entry,) = manifest["validations"]
        target = directory / entry["file"]
        document = json.loads(target.read_text())
        document["signature"] = "0" * 64
        target.write_text(json.dumps(document))
        with pytest.raises(PersistError, match="does not match the session manifest"):
            ReproSession.load(directory)

    def test_pre_validation_sessions_still_load(self, tmp_path):
        session = ReproSession(ScenarioConfig(scale=0.05, seed=3))
        session.report("active")
        directory = tmp_path / "session"
        session.save(directory)
        manifest = json.loads((directory / "session.json").read_text())
        del manifest["validations"]  # what an older build would have written
        (directory / "session.json").write_text(json.dumps(manifest))
        restored = ReproSession.load(directory)
        assert restored.cached_validations() == {}
        assert len(restored.cached_reports()) == 1
