"""Stream checkpoints: kill the daemon mid-stream, resume, exact parity."""

import json

import pytest

from repro.api.config import ScenarioConfig
from repro.api.session import ReproSession
from repro.core.engine import report_signature
from repro.errors import PersistError
from repro.persist.stream import (
    STREAM_MANIFEST,
    StreamCheckpointer,
    load_stream_checkpoint,
    resume_stream,
)
from repro.stream.daemon import DaemonConfig, StreamDaemon
from repro.stream.engine import StreamConfig, StreamingEngine

_CONFIG = ScenarioConfig(scale=0.05, seed=7)
_POLLS = 4
_CHURN = 0.05


def _campaign(snapshots=_POLLS):
    return ReproSession(_CONFIG).longitudinal(
        snapshots=snapshots, churn_fraction=_CHURN
    )


def _daemon(campaign, polls, checkpointer=None, stream=None, start=0, previous=None):
    return StreamDaemon(
        campaign,
        stream or StreamingEngine(StreamConfig(), options=campaign.options),
        config=DaemonConfig(max_polls=polls),
        checkpointer=checkpointer,
        start=start,
        previous=previous,
    )


@pytest.fixture(scope="module")
def uninterrupted():
    """The reference: one daemon run start to finish, no checkpointing."""
    daemon = _daemon(_campaign(), _POLLS)
    updates = daemon.run()
    return updates, daemon.stream


@pytest.fixture(scope="module")
def checkpoint_dir(tmp_path_factory):
    """A daemon killed after two of four polls, checkpointing as it went."""
    directory = tmp_path_factory.mktemp("stream") / "checkpoint"
    campaign = _campaign()
    daemon = _daemon(campaign, 2, checkpointer=StreamCheckpointer(directory, _CONFIG))
    daemon.run()
    return directory


class TestCheckpointContents:
    def test_manifest_round_trip(self, checkpoint_dir):
        checkpoint = load_stream_checkpoint(checkpoint_dir)
        assert checkpoint.completed == 2
        assert checkpoint.last_name == "snapshot-1"
        assert checkpoint.scenario == _CONFIG
        assert checkpoint.campaign.churn_fraction == _CHURN
        assert checkpoint.stream == StreamConfig()
        assert checkpoint.include_ipv6 is True
        assert checkpoint.window["emitted"] == 2
        assert checkpoint.event_counts["report.emitted"] == 2
        assert len(checkpoint.last_observations) > 0

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(PersistError, match=STREAM_MANIFEST):
            load_stream_checkpoint(tmp_path)

    def test_torn_checkpoint_detected(self, checkpoint_dir, tmp_path):
        copy = tmp_path / "torn"
        copy.mkdir()
        for path in checkpoint_dir.iterdir():
            (copy / path.name).write_bytes(path.read_bytes())
        manifest = json.loads((copy / STREAM_MANIFEST).read_text())
        manifest["index_signature"] = "0" * 64
        (copy / STREAM_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(PersistError, match="torn"):
            load_stream_checkpoint(copy)

    def test_rotation_keeps_only_newest(self, checkpoint_dir):
        assert sorted(p.name for p in checkpoint_dir.glob("index-*.json")) == [
            "index-0002.json"
        ]
        assert sorted(p.name for p in checkpoint_dir.glob("poll-*.jsonl")) == [
            "poll-0002.jsonl"
        ]

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(PersistError, match="at least one poll"):
            StreamCheckpointer(tmp_path, _CONFIG, keep=0)


class TestResumeGate:
    """The resume gate: killed + resumed == uninterrupted, byte for byte."""

    def test_resumed_daemon_matches_uninterrupted(self, checkpoint_dir, uninterrupted):
        reference_updates, reference_stream = uninterrupted
        checkpoint = load_stream_checkpoint(checkpoint_dir)
        campaign, stream = resume_stream(checkpoint)
        daemon = _daemon(
            campaign,
            _POLLS - checkpoint.completed,
            stream=stream,
            start=checkpoint.completed,
            previous=checkpoint.last_observations,
        )
        resumed_updates = daemon.run()
        assert [u.name for u in resumed_updates] == ["snapshot-2", "snapshot-3"]
        for update, reference in zip(
            resumed_updates,
            reference_updates[checkpoint.completed :],
            strict=True,
        ):
            assert report_signature(update.report) == report_signature(
                reference.report
            )
        # Cumulative event counts converge to the uninterrupted run's.
        assert stream.publisher.counts == reference_stream.publisher.counts
        # The estimator series continues as if never interrupted.
        assert stream.estimator.rate == pytest.approx(
            reference_stream.estimator.rate
        )
        assert stream.estimator.windows == reference_stream.estimator.windows

    def test_resume_continues_checkpointing(self, checkpoint_dir, tmp_path):
        checkpoint = load_stream_checkpoint(checkpoint_dir)
        campaign, stream = resume_stream(checkpoint)
        target = tmp_path / "continued"
        daemon = _daemon(
            campaign,
            1,
            checkpointer=StreamCheckpointer(target, checkpoint.scenario),
            stream=stream,
            start=checkpoint.completed,
            previous=checkpoint.last_observations,
        )
        daemon.run()
        final = load_stream_checkpoint(target)
        assert final.completed == 3
        assert final.window["emitted"] == 3
        assert final.event_counts["report.emitted"] == 3

    def test_crash_mid_save_keeps_previous_checkpoint(
        self, checkpoint_dir, tmp_path, monkeypatch
    ):
        copy = tmp_path / "crashy"
        copy.mkdir()
        for path in checkpoint_dir.iterdir():
            (copy / path.name).write_bytes(path.read_bytes())
        before = load_stream_checkpoint(copy)

        import repro.persist.stream as stream_module

        real_write_atomic = stream_module.write_atomic

        def dying_write_atomic(path, text):
            if str(path).endswith(STREAM_MANIFEST):
                raise OSError("simulated crash before the manifest landed")
            real_write_atomic(path, text)

        monkeypatch.setattr(stream_module, "write_atomic", dying_write_atomic)
        campaign, stream = resume_stream(before)
        daemon = _daemon(
            campaign,
            1,
            checkpointer=StreamCheckpointer(copy, before.scenario),
            stream=stream,
            start=before.completed,
            previous=before.last_observations,
        )
        with pytest.raises(OSError, match="simulated crash"):
            daemon.run()
        after = load_stream_checkpoint(copy)  # previous checkpoint intact
        assert after.completed == before.completed
        assert after.last_observations == before.last_observations
