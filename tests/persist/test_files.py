"""The shared file primitives: atomic writes and guarded JSON reads."""

import json

import pytest

from repro.errors import PersistError
from repro.persist.files import read_json_document, write_atomic


class TestWriteAtomic:
    def test_writes_content_and_creates_parents(self, tmp_path):
        target = tmp_path / "deep" / "nested" / "doc.json"
        write_atomic(target, '{"v": 1}')
        assert json.loads(target.read_text()) == {"v": 1}

    def test_replaces_existing_file_without_residue(self, tmp_path):
        target = tmp_path / "doc.json"
        write_atomic(target, "old")
        write_atomic(target, "new")
        assert target.read_text() == "new"
        assert list(tmp_path.glob("*.tmp")) == []


class TestReadJsonDocument:
    def test_reads_an_object(self, tmp_path):
        target = tmp_path / "doc.json"
        target.write_text('{"version": 2}', encoding="utf-8")
        assert read_json_document(target, "fixture") == {"version": 2}

    def test_missing_file_is_persist_error(self, tmp_path):
        with pytest.raises(PersistError, match="does not exist"):
            read_json_document(tmp_path / "absent.json", "fixture")

    def test_invalid_json_is_persist_error(self, tmp_path):
        target = tmp_path / "doc.json"
        target.write_text("{oops", encoding="utf-8")
        with pytest.raises(PersistError, match="not valid JSON"):
            read_json_document(target, "fixture")

    def test_non_object_document_is_persist_error(self, tmp_path):
        # Every persisted artifact is a versioned mapping; a top-level
        # array or scalar is a corrupt document, not a usable one.
        target = tmp_path / "doc.json"
        target.write_text("[1, 2, 3]", encoding="utf-8")
        with pytest.raises(PersistError, match="not a JSON object"):
            read_json_document(target, "fixture")
