"""Campaign checkpoints: stop after snapshot k, resume to k+n, exact parity."""

import dataclasses
import json

import pytest

from repro.api.config import ScenarioConfig
from repro.api.session import ReproSession
from repro.core.engine import report_signature
from repro.errors import PersistError
from repro.net.addresses import AddressFamily
from repro.persist.campaign import (
    CHECKPOINT_MANIFEST,
    CampaignCheckpointer,
    load_checkpoint,
    resume_campaign,
)

_CONFIG = ScenarioConfig(scale=0.05, seed=7)
_SNAPSHOTS = 4
_CHURN = 0.05


def _campaign(snapshots=_SNAPSHOTS):
    return ReproSession(_CONFIG).longitudinal(
        snapshots=snapshots, churn_fraction=_CHURN
    )


@pytest.fixture(scope="module")
def uninterrupted():
    """The reference: one campaign run start to finish."""
    return _campaign().run()


@pytest.fixture(scope="module")
def checkpoint_dir(tmp_path_factory):
    """A campaign stopped after two snapshots, checkpointing as it goes."""
    directory = tmp_path_factory.mktemp("campaign") / "checkpoint"
    campaign = _campaign(snapshots=2)
    campaign.run(checkpointer=CampaignCheckpointer(directory, _CONFIG))
    return directory


class TestCheckpointContents:
    def test_manifest_round_trip(self, checkpoint_dir):
        checkpoint = load_checkpoint(checkpoint_dir)
        assert checkpoint.completed == 2
        assert checkpoint.last_name == "snapshot-1"
        assert checkpoint.scenario == _CONFIG
        assert checkpoint.campaign.churn_fraction == _CHURN
        assert checkpoint.include_ipv6 is True
        assert len(checkpoint.stability["ipv4"]) == 2
        assert len(checkpoint.last_observations) > 0

    def test_stability_rows_restore_as_objects(self, checkpoint_dir, uninterrupted):
        checkpoint = load_checkpoint(checkpoint_dir)
        restored = checkpoint.stability_rows(AddressFamily.IPV4)
        reference = [s.stability() for s in uninterrupted.snapshots[:2]]
        assert restored == reference

    def test_missing_manifest_raises(self, tmp_path):
        with pytest.raises(PersistError, match=CHECKPOINT_MANIFEST):
            load_checkpoint(tmp_path)

    def test_torn_checkpoint_detected(self, checkpoint_dir, tmp_path):
        copy = tmp_path / "torn"
        copy.mkdir()
        for path in checkpoint_dir.iterdir():
            (copy / path.name).write_bytes(path.read_bytes())
        manifest = json.loads((copy / CHECKPOINT_MANIFEST).read_text())
        manifest["index_signature"] = "0" * 64
        (copy / CHECKPOINT_MANIFEST).write_text(json.dumps(manifest))
        with pytest.raises(PersistError, match="torn"):
            load_checkpoint(copy)


class TestResumeParity:
    def test_resumed_matches_uninterrupted_snapshot_for_snapshot(
        self, checkpoint_dir, uninterrupted
    ):
        checkpoint = load_checkpoint(checkpoint_dir)
        campaign, engine = resume_campaign(checkpoint, snapshots=_SNAPSHOTS)
        resumed = campaign.run(
            start=checkpoint.completed,
            previous=checkpoint.last_observations,
            engine=engine,
        )
        assert len(resumed.snapshots) == _SNAPSHOTS - checkpoint.completed
        for resolved, reference in zip(
            resumed.snapshots,
            uninterrupted.snapshots[checkpoint.completed :],
            strict=True,
        ):
            assert report_signature(resolved.report) == report_signature(
                reference.report
            )
            assert resolved.stability() == reference.stability()
            assert resolved.stability(AddressFamily.IPV6) == reference.stability(
                AddressFamily.IPV6
            )

    def test_resume_continues_checkpointing(self, checkpoint_dir, tmp_path):
        checkpoint = load_checkpoint(checkpoint_dir)
        campaign, engine = resume_campaign(checkpoint, snapshots=3)
        target = tmp_path / "continued"
        checkpointer = CampaignCheckpointer(
            target, checkpoint.scenario, prior_stability=checkpoint.stability
        )
        campaign.run(
            checkpointer=checkpointer,
            start=checkpoint.completed,
            previous=checkpoint.last_observations,
            engine=engine,
        )
        final = load_checkpoint(target)
        assert final.completed == 3
        assert len(final.stability["ipv4"]) == 3

    def test_resume_parity_within_one_ids_window(self, tmp_path):
        """Snapshots closer together than the IDS rate-limit window.

        The per-(vantage, AS, window) probe counters accumulate across
        same-window snapshots, so they are checkpointed and restored —
        without that, a resumed network would start the next snapshot with
        a clean IDS slate and observe different scan responses than the
        uninterrupted run.
        """
        interval = 0.25 * 86400.0  # four snapshots inside one 1-day window
        config = ScenarioConfig(scale=0.05, seed=3)

        def campaign(horizon):
            return ReproSession(config).longitudinal(
                snapshots=horizon, churn_fraction=_CHURN, interval=interval
            )

        uninterrupted = campaign(2).run()
        directory = tmp_path / "subwindow"
        campaign(1).run(checkpointer=CampaignCheckpointer(directory, config))
        checkpoint = load_checkpoint(directory)
        assert checkpoint.probe_counts  # same-window counters were persisted
        resumed_campaign, engine = resume_campaign(checkpoint, snapshots=2)
        resumed = resumed_campaign.run(
            start=checkpoint.completed,
            previous=checkpoint.last_observations,
            engine=engine,
        )
        assert list(resumed.snapshots[0].capture.observations) == list(
            uninterrupted.snapshots[1].capture.observations
        )
        assert report_signature(resumed.snapshots[0].report) == report_signature(
            uninterrupted.snapshots[1].report
        )

    def test_corrupt_last_snapshot_raises_persist_error(self, checkpoint_dir, tmp_path):
        copy = tmp_path / "corrupt"
        copy.mkdir()
        for path in checkpoint_dir.iterdir():
            (copy / path.name).write_bytes(path.read_bytes())
        manifest = json.loads((copy / CHECKPOINT_MANIFEST).read_text())
        snapshot = copy / manifest["last_snapshot_file"]
        snapshot.write_text(snapshot.read_text()[:-40])  # truncate mid-record
        with pytest.raises(PersistError):
            load_checkpoint(copy)

    def test_crash_mid_save_keeps_previous_checkpoint(
        self, checkpoint_dir, tmp_path, monkeypatch
    ):
        """Data files are versioned; a crash before the manifest replace
        leaves the previous checkpoint loadable."""
        copy = tmp_path / "crashy"
        copy.mkdir()
        for path in checkpoint_dir.iterdir():
            (copy / path.name).write_bytes(path.read_bytes())
        before = load_checkpoint(copy)

        import repro.persist.campaign as campaign_module

        real_write_atomic = campaign_module.write_atomic

        def dying_write_atomic(path, text):
            if str(path).endswith(CHECKPOINT_MANIFEST):
                raise OSError("simulated crash before the manifest landed")
            real_write_atomic(path, text)

        monkeypatch.setattr(campaign_module, "write_atomic", dying_write_atomic)
        campaign, engine = resume_campaign(before, snapshots=3)
        checkpointer = CampaignCheckpointer(copy, before.scenario, prior_stability=before.stability)
        with pytest.raises(OSError, match="simulated crash"):
            campaign.run(
                checkpointer=checkpointer,
                start=before.completed,
                previous=before.last_observations,
                engine=engine,
            )
        after = load_checkpoint(copy)  # old manifest + old data files intact
        assert after.completed == before.completed
        assert after.last_observations == before.last_observations

    def test_resume_below_completed_raises(self, checkpoint_dir):
        checkpoint = load_checkpoint(checkpoint_dir)
        with pytest.raises(PersistError, match="already completed"):
            resume_campaign(checkpoint, snapshots=1)

    def test_resume_with_nothing_to_do(self, checkpoint_dir):
        checkpoint = load_checkpoint(checkpoint_dir)
        campaign, engine = resume_campaign(checkpoint)
        result = campaign.run(
            start=checkpoint.completed,
            previous=checkpoint.last_observations,
            engine=engine,
        )
        assert result.snapshots == ()
        assert engine.report is not None

    def test_restored_engine_refuses_bootstrap(self, checkpoint_dir):
        from repro.errors import DatasetError

        checkpoint = load_checkpoint(checkpoint_dir)
        _, engine = resume_campaign(checkpoint)
        with pytest.raises(DatasetError, match="bootstrapped"):
            engine.bootstrap([])


class TestRunInterleaving:
    def test_run_equals_collect_then_resolve(self, uninterrupted):
        campaign = _campaign()
        phased = campaign.resolve(campaign.collect())
        for resolved, reference in zip(phased.snapshots, uninterrupted.snapshots, strict=True):
            assert report_signature(resolved.report) == report_signature(
                reference.report
            )

    def test_run_resume_guard(self):
        from repro.errors import SimulationError

        campaign = _campaign()
        with pytest.raises(SimulationError, match="restored engine"):
            campaign.run(start=1)

    def test_collect_resume_guard(self):
        from repro.errors import SimulationError

        campaign = _campaign()
        with pytest.raises(SimulationError, match="previous snapshot"):
            campaign.collect(start=1)

    def test_snapshots_override_recorded_in_manifest(self, checkpoint_dir, tmp_path):
        checkpoint = load_checkpoint(checkpoint_dir)
        campaign, engine = resume_campaign(checkpoint, snapshots=3)
        assert campaign.config == dataclasses.replace(checkpoint.campaign, snapshots=3)


class TestCheckpointRotation:
    def test_default_keeps_only_newest(self, checkpoint_dir):
        assert sorted(p.name for p in checkpoint_dir.glob("index-*.json")) == ["index-0002.json"]
        assert sorted(p.name for p in checkpoint_dir.glob("snapshot-*.jsonl")) == [
            "snapshot-0002.jsonl"
        ]

    def test_keep_retains_newest_n(self, tmp_path):
        directory = tmp_path / "rotated"
        campaign = _campaign(snapshots=3)
        campaign.run(checkpointer=CampaignCheckpointer(directory, _CONFIG, keep=2))
        assert sorted(p.name for p in directory.glob("index-*.json")) == [
            "index-0002.json",
            "index-0003.json",
        ]
        assert sorted(p.name for p in directory.glob("snapshot-*.jsonl")) == [
            "snapshot-0002.jsonl",
            "snapshot-0003.jsonl",
        ]
        manifest = json.loads((directory / CHECKPOINT_MANIFEST).read_text())
        assert manifest["retained"] == [2, 3]

    def test_pruned_directory_still_resumes(self, tmp_path, uninterrupted):
        directory = tmp_path / "rotated"
        _campaign(snapshots=2).run(
            checkpointer=CampaignCheckpointer(directory, _CONFIG, keep=2)
        )
        checkpoint = load_checkpoint(directory)
        campaign, engine = resume_campaign(checkpoint, snapshots=_SNAPSHOTS)
        resumed = campaign.run(
            start=checkpoint.completed,
            previous=checkpoint.last_observations,
            engine=engine,
        )
        for resolved, reference in zip(
            resumed.snapshots,
            uninterrupted.snapshots[checkpoint.completed :],
            strict=True,
        ):
            assert report_signature(resolved.report) == report_signature(reference.report)

    def test_reused_directory_evicts_stale_higher_numbers(self, tmp_path):
        # Leftovers of an older campaign must not outrank the fresh save.
        directory = tmp_path / "reused"
        directory.mkdir()
        (directory / "index-0005.json").write_text("{}")
        (directory / "snapshot-0005.jsonl").write_text("")
        _campaign(snapshots=2).run(
            checkpointer=CampaignCheckpointer(directory, _CONFIG, keep=1)
        )
        assert sorted(p.name for p in directory.glob("index-*.json")) == ["index-0002.json"]
        assert sorted(p.name for p in directory.glob("snapshot-*.jsonl")) == [
            "snapshot-0002.jsonl"
        ]
        # The manifest references files that actually exist: resume works.
        checkpoint = load_checkpoint(directory)
        assert checkpoint.completed == 2

    def test_foreign_files_left_alone(self, tmp_path):
        directory = tmp_path / "rotated"
        directory.mkdir()
        keepsake = directory / "index-notes.json"
        keepsake.write_text("{}")
        _campaign(snapshots=2).run(
            checkpointer=CampaignCheckpointer(directory, _CONFIG, keep=1)
        )
        assert keepsake.exists()  # non-NNNN names are never pruned

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(PersistError, match="at least one snapshot"):
            CampaignCheckpointer(tmp_path, _CONFIG, keep=0)
