"""Index snapshot/restore: state-signature parity asserted on load."""

import json

import pytest

from repro.core.engine import ObservationIndex, ResolutionEngine, report_signature
from repro.core.identifiers import IdentifierOptions
from repro.errors import PersistError
from repro.persist.index import (
    index_from_document,
    index_to_document,
    load_index,
    save_index,
    state_signature_digest,
)
from repro.simnet.device import ServiceType
from repro.sources.records import Observation


def _observation(address, device="alpha", protocol=ServiceType.SSH, asn=65001):
    if protocol is ServiceType.SSH:
        fields = (
            ("banner", "SSH-2.0-OpenSSH_9.4"),
            ("capability_signature", f"caps-{device}"),
            ("host_key_fingerprint", f"key-{device}"),
        )
        port = 22
    else:
        fields = (("engine_boots", "1"), ("engine_id", f"engine-{device}"))
        port = 161
    return Observation(
        address=address, protocol=protocol, source="active", port=port, asn=asn, fields=fields
    )


@pytest.fixture
def index():
    built = ObservationIndex()
    built.extend(
        [
            _observation("10.0.0.1"),
            _observation("10.0.0.2"),
            _observation("10.0.0.3", device="beta"),
            _observation("2001:db8::1"),
            _observation("10.0.0.4", protocol=ServiceType.SNMPV3, asn=None),
            # an identifier-less observation: observed but not indexed
            Observation(
                address="10.0.0.9", protocol=ServiceType.BGP, source="active", port=179
            ),
        ]
    )
    return built


class TestIndexRoundTrip:
    def test_signature_parity(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        loaded = load_index(path)
        assert loaded.state_signature() == index.state_signature()
        assert state_signature_digest(loaded) == state_signature_digest(index)
        assert loaded.observed == index.observed
        assert loaded.indexed == index.indexed
        assert loaded.options == index.options

    def test_restored_index_derives_identical_report(self, index, tmp_path):
        save_index(index, tmp_path / "index.json")
        loaded = load_index(tmp_path / "index.json")
        engine = ResolutionEngine()
        assert report_signature(engine.report(loaded, name="x")) == report_signature(
            engine.report(index, name="x")
        )

    def test_restored_index_supports_removal_replay(self, index, tmp_path):
        # ASN refcounts round-trip, so removing a previously added
        # observation works exactly as on the original index.
        save_index(index, tmp_path / "index.json")
        loaded = load_index(tmp_path / "index.json")
        removed = _observation("10.0.0.2")
        index.remove(removed)
        loaded.remove(removed)
        assert loaded.state_signature() == index.state_signature()

    def test_restored_index_marks_everything_dirty(self, index, tmp_path):
        save_index(index, tmp_path / "index.json")
        loaded = load_index(tmp_path / "index.json")
        dirty = loaded.consume_dirty()
        total = sum(len(values) for values in dirty.values())
        buckets = index.state_signature()["members"]
        assert total == sum(len(identifiers) for identifiers in buckets.values())

    def test_non_default_options_roundtrip(self, tmp_path):
        options = IdentifierOptions(ssh_include_banner=False, bgp_include_hold_time=False)
        built = ObservationIndex(options)
        built.add(_observation("10.0.0.1"))
        save_index(built, tmp_path / "index.json")
        assert load_index(tmp_path / "index.json").options == options


class TestIndexFailureModes:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(PersistError):
            load_index(tmp_path / "absent.json")

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("not json")
        with pytest.raises(PersistError):
            load_index(path)

    def test_unsupported_version_raises(self, index):
        document = index_to_document(index)
        document["version"] = 99
        with pytest.raises(PersistError):
            index_from_document(document)

    def test_malformed_document_raises(self):
        with pytest.raises(PersistError):
            index_from_document({"version": 1})

    def test_tampered_contents_fail_parity(self, index, tmp_path):
        path = tmp_path / "index.json"
        save_index(index, path)
        document = json.loads(path.read_text())
        # Flip one refcount: the recomputed signature must not match.  A v2
        # member row is [identifier_symbol, [address_symbol, count, ...]].
        cells = document["buckets"][0]["members"][0][1]
        cells[1] += 1
        path.write_text(json.dumps(document))
        with pytest.raises(PersistError, match="parity"):
            load_index(path)


def _v1_document(index):
    """Hand-build the version-1 (nested string dict) snapshot of ``index``."""
    import dataclasses

    from repro.persist.index import _bucket_tag

    state = index.export_state()
    bucket_keys = sorted(
        set(state["members"]) | set(state["asn"]) | set(state["asn_refs"]),
        key=_bucket_tag,
    )
    return {
        "version": 1,
        "options": dataclasses.asdict(index.options),
        "observed": state["observed"],
        "indexed": state["indexed"],
        "buckets": [
            {
                "bucket": _bucket_tag(key),
                "members": state["members"].get(key, {}),
                "asn": state["asn"].get(key, {}),
                "asn_refs": state["asn_refs"].get(key, {}),
            }
            for key in bucket_keys
        ],
        "signature": state_signature_digest(index),
    }


class TestV1ReadCompat:
    """Pre-columnar (PR-5) snapshots must keep loading byte-for-byte."""

    def test_v1_document_loads(self, index):
        loaded = index_from_document(_v1_document(index))
        assert loaded.state_signature() == index.state_signature()
        assert loaded.observed == index.observed
        assert loaded.options == index.options

    def test_v1_and_v2_share_signature_digest(self, index):
        v1 = index_from_document(_v1_document(index))
        v2 = index_from_document(index_to_document(index))
        assert state_signature_digest(v1) == state_signature_digest(v2)
        assert _v1_document(index)["signature"] == index_to_document(index)["signature"]

    def test_v1_resave_upgrades_to_v2(self, index, tmp_path):
        loaded = index_from_document(_v1_document(index))
        path = tmp_path / "resaved.json"
        save_index(loaded, path)
        document = json.loads(path.read_text())
        assert document["version"] == 2
        assert load_index(path).state_signature() == index.state_signature()

    def test_v1_supports_removal_replay(self, index):
        loaded = index_from_document(_v1_document(index))
        removed = _observation("10.0.0.2")
        index.remove(removed)
        loaded.remove(removed)
        assert loaded.state_signature() == index.state_signature()
