"""Observability must never change results.

Runs the full paper scenario at scale 1.0, seed 42 twice — once with the
obs layer dormant, once with metrics + span tracing fully enabled — and
asserts all ten registered experiments render byte-identically and the
resolved reports match by :func:`report_signature`.  This is the
load-bearing guarantee of the no-op fast path design: instrumentation
only *records*; it is never allowed to perturb.
"""

import pytest

from repro import obs
from repro.api.config import ScenarioConfig
from repro.api.experiments import experiment_names
from repro.api.session import ReproSession
from repro.core.engine import report_signature

_SCALE = 1.0
_SEED = 42
_SOURCES = ("active", "censys", "union")


def _render_all() -> tuple[dict[str, str], dict[str, dict]]:
    """Experiments and report signatures from one fresh session."""
    session = ReproSession(ScenarioConfig(scale=_SCALE, seed=_SEED))
    experiments = session.run_experiments()
    signatures = {
        source: report_signature(session.report(source)) for source in _SOURCES
    }
    return experiments, signatures


@pytest.fixture(scope="module")
def plain():
    assert not obs.is_enabled()
    return _render_all()


@pytest.fixture(scope="module")
def instrumented():
    with obs.observed() as registry:
        with obs.trace("parity"):
            rendered = _render_all()
    return rendered, registry


class TestInstrumentedParity:
    def test_all_ten_experiments_render_byte_identically(self, plain, instrumented):
        plain_experiments, _ = plain
        (instrumented_experiments, _), _ = instrumented
        assert sorted(plain_experiments) == sorted(experiment_names())
        assert len(plain_experiments) == 10
        for name in plain_experiments:
            assert instrumented_experiments[name] == plain_experiments[name], name

    def test_report_signatures_match(self, plain, instrumented):
        _, plain_signatures = plain
        (_, instrumented_signatures), _ = instrumented
        assert instrumented_signatures == plain_signatures

    def test_instrumented_run_actually_recorded(self, instrumented):
        _, registry = instrumented
        assert registry.counter_total("index.observations.indexed") > 0
        assert registry.counter_value(
            "session.cache", kind="report", outcome="miss"
        ) > 0
        [root] = registry.spans
        assert root["name"] == "parity"
        assert any(
            child["name"] == "session.report" for child in root["children"]
        )

    def test_obs_state_restored_after_instrumented_run(self, instrumented):
        assert not obs.is_enabled()
