"""Seam-level checks: the instrumented layers record what they claim to."""

import pytest

from repro import obs
from repro.api.config import ScenarioConfig
from repro.api.parallel import build_index_parallel, last_build_stats
from repro.api.session import ReproSession
from repro.core.engine import ObservationIndex


@pytest.fixture(scope="module")
def observations():
    session = ReproSession(ScenarioConfig(scale=0.05, seed=3))
    return list(session.observations("union"))


class TestIndexSeams:
    def test_extend_counts_batches(self, observations):
        with obs.observed() as registry:
            index = ObservationIndex.build(observations)
        assert registry.counter_total("index.observations.observed") == len(observations)
        assert registry.counter_total("index.observations.indexed") == index.indexed
        assert registry.gauge_value(
            "index.symbols.interned", kind="address"
        ) == index.address_symbols
        assert registry.gauge_value(
            "index.symbols.interned", kind="identifier"
        ) == index.identifier_symbols

    def test_apply_delta_counts_both_directions(self, observations):
        head, tail = observations[:50], observations[50:80]
        index = ObservationIndex.build(head + tail)
        with obs.observed() as registry:
            index.apply_delta(removed=tail, added=[])
        assert registry.counter_total("index.delta.removed") == len(tail)
        assert registry.counter_total("index.delta.added") == 0
        # net counters are never decremented by removals
        assert registry.counter_total("index.observations.observed") == 0

    def test_parallel_build_records_stats_in_registry(self, observations):
        with obs.observed() as registry:
            index = build_index_parallel(observations, workers=2)
        stats = registry.last_build_stats()
        assert stats is not None
        assert stats.workers == 2
        assert stats.observations == len(observations)
        assert registry.counter_value(
            "parallel.build.runs", transport=stats.transport
        ) == 1
        assert index.observed == len(observations)
        [span] = registry.spans
        assert span["name"] == "index.build"
        assert span["attrs"]["transport"] == stats.transport

    def test_last_build_stats_shim_reads_registry(self, observations):
        build_index_parallel(observations[:20], workers=1)
        shim = last_build_stats()
        assert shim is obs.metrics().last_build_stats()
        assert shim.transport == "serial"


class TestSessionSeams:
    def test_cache_hit_miss_counters(self):
        with obs.observed() as registry:
            session = ReproSession(ScenarioConfig(scale=0.05, seed=3))
            session.report("active")
            session.report("active")
        assert registry.counter_value(
            "session.cache", kind="report", outcome="miss"
        ) == 1
        assert registry.counter_value(
            "session.cache", kind="report", outcome="hit"
        ) == 1


class TestBankSeams:
    def test_probe_counters_mirror_bank_accounting(self):
        with obs.observed() as registry:
            session = ReproSession(ScenarioConfig(scale=0.05, seed=3))
            midar = session.validate("midar")
            ally = session.validate("ally")
        banks = session.validation_run
        issued = sum(
            bank.probes_issued for bank in banks.banks().values()
        )
        reused = sum(
            bank.probes_reused for bank in banks.banks().values()
        )
        assert registry.counter_total("validation.probes") == issued + reused
        issued_counter = sum(
            value
            for (name, labels), value in registry.counter_totals().items()
            if name == "validation.probes" and ("outcome", "issued") in labels
        )
        assert issued_counter == issued
        assert midar.probes_issued + ally.probes_issued <= issued + reused
