"""Tests for the metrics registry: samples, rendering, round trips."""

import json

import pytest

from repro.errors import DatasetError
from repro.obs.registry import Histogram, MetricsRegistry, label_key, prometheus_name


@pytest.fixture()
def registry():
    reg = MetricsRegistry()
    reg.inc("index.observations.indexed", 100)
    reg.inc("session.cache", 3, kind="report", outcome="hit")
    reg.inc("session.cache", 1, kind="report", outcome="miss")
    reg.set_gauge("index.dirty.identifiers", 12)
    reg.observe("build.seconds", 0.02, stage="pack")
    reg.observe("build.seconds", 0.3, stage="pack")
    reg.append_series("campaign.snapshots", {"snapshot": 0, "observations": 10})
    reg.record_span({"name": "resolve", "seconds": 0.1})
    return reg


class TestSamples:
    def test_counters_accumulate_per_label_set(self, registry):
        assert registry.counter_value("session.cache", kind="report", outcome="hit") == 3
        assert registry.counter_value("session.cache", kind="report", outcome="miss") == 1
        assert registry.counter_total("session.cache") == 4

    def test_unknown_counter_reads_zero(self, registry):
        assert registry.counter_value("nope") == 0
        assert registry.counter_total("nope") == 0

    def test_gauge_reads_back(self, registry):
        assert registry.gauge_value("index.dirty.identifiers") == 12
        assert registry.gauge_value("index.dirty.identifiers", kind="x") is None

    def test_histogram_tracks_summary_stats(self, registry):
        histogram = registry.histogram("build.seconds", stage="pack")
        assert histogram.count == 2
        assert histogram.total == pytest.approx(0.32)
        assert histogram.minimum == pytest.approx(0.02)
        assert histogram.maximum == pytest.approx(0.3)

    def test_series_and_spans(self, registry):
        assert registry.series("campaign.snapshots")[0]["observations"] == 10
        assert registry.series("absent") == []
        assert registry.spans[0]["name"] == "resolve"

    def test_reset_drops_samples_but_keeps_build_stats(self, registry):
        registry.record_build_stats("sentinel")
        registry.reset()
        assert registry.counter_total("session.cache") == 0
        assert registry.spans == []
        assert registry.last_build_stats() == "sentinel"

    def test_build_stats_slot_starts_empty(self):
        assert MetricsRegistry().last_build_stats() is None


class TestRendering:
    def test_json_round_trip_is_lossless(self, registry):
        document = json.loads(json.dumps(registry.to_json()))
        rebuilt = MetricsRegistry.from_json(document)
        assert rebuilt.to_json() == registry.to_json()

    def test_prometheus_commutes_with_json_export(self, registry):
        rebuilt = MetricsRegistry.from_json(registry.to_json())
        assert rebuilt.prometheus_text() == registry.prometheus_text()

    def test_prometheus_text_shape(self, registry):
        text = registry.prometheus_text()
        assert "# TYPE session_cache counter" in text
        assert 'session_cache{kind="report",outcome="hit"} 3' in text
        assert "# TYPE index_dirty_identifiers gauge" in text
        assert 'build_seconds_bucket{stage="pack",le="+Inf"} 2' in text
        assert 'build_seconds_count{stage="pack"} 2' in text
        assert text.endswith("\n")

    def test_empty_registry_renders_empty(self):
        empty = MetricsRegistry()
        assert empty.prometheus_text() == ""
        assert empty.to_json()["counters"] == {}

    def test_malformed_document_raises_dataset_error(self):
        with pytest.raises(DatasetError):
            MetricsRegistry.from_json({"histograms": {"h": [{"labels": {}}]}})

    def test_json_output_is_insertion_order_independent(self):
        one, two = MetricsRegistry(), MetricsRegistry()
        one.inc("a", 1)
        one.inc("b", 2, k="v")
        two.inc("b", 2, k="v")
        two.inc("a", 1)
        assert one.to_json() == two.to_json()
        assert one.prometheus_text() == two.prometheus_text()


class TestHelpers:
    def test_label_key_sorts_and_stringifies(self):
        assert label_key({"b": 2, "a": "x"}) == (("a", "x"), ("b", "2"))

    def test_prometheus_name_sanitises(self):
        assert prometheus_name("index.observations.indexed") == "index_observations_indexed"
        assert prometheus_name("9lives") == "_9lives"

    def test_histogram_merge_rejects_mismatched_bounds(self):
        with pytest.raises(DatasetError):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_merge_into_self_refused(self, registry):
        with pytest.raises(DatasetError):
            registry.merge(registry)
