"""The persisted campaign metric series: determinism and resume equality."""

import json

import pytest

from repro import obs
from repro.api.config import ScenarioConfig
from repro.api.session import ReproSession
from repro.longitudinal.campaign import CAMPAIGN_SERIES, snapshot_metrics_row
from repro.persist.campaign import (
    CampaignCheckpointer,
    load_checkpoint,
    resume_campaign,
)

_CONFIG = ScenarioConfig(scale=0.05, seed=3)
_SNAPSHOTS = 3


def _campaign(snapshots=_SNAPSHOTS):
    return ReproSession(_CONFIG).longitudinal(
        snapshots=snapshots, churn_fraction=0.02, include_ipv6=False
    )


@pytest.fixture(scope="module")
def uninterrupted(tmp_path_factory):
    directory = tmp_path_factory.mktemp("full")
    campaign = _campaign()
    checkpointer = CampaignCheckpointer(directory, _CONFIG)
    campaign.run(checkpointer=checkpointer)
    return directory, checkpointer


class TestMetricSeries:
    def test_one_row_per_snapshot(self, uninterrupted):
        _, checkpointer = uninterrupted
        rows = checkpointer.metric_series
        assert [row["snapshot"] for row in rows] == list(range(_SNAPSHOTS))
        for row in rows:
            assert row["observations"] > 0
            assert row["probes"] > 0

    def test_rows_carry_no_wall_clock_fields(self, uninterrupted):
        _, checkpointer = uninterrupted
        for row in checkpointer.metric_series:
            assert "seconds" not in row
            # simulated time advances by the configured interval
        times = [row["time"] for row in checkpointer.metric_series]
        assert times == sorted(times)

    def test_manifest_persists_the_series(self, uninterrupted):
        directory, checkpointer = uninterrupted
        manifest = json.loads((directory / "checkpoint.json").read_text())
        assert manifest["metric_series"] == checkpointer.metric_series

    def test_resumed_series_equals_uninterrupted(self, uninterrupted, tmp_path):
        full_directory, full_checkpointer = uninterrupted
        partial = tmp_path / "partial"
        campaign = _campaign(snapshots=2)
        checkpointer = CampaignCheckpointer(partial, _CONFIG)
        campaign.run(checkpointer=checkpointer)

        checkpoint = load_checkpoint(partial)
        assert checkpoint.metric_series == full_checkpointer.metric_series[:2]
        resumed_campaign, engine = resume_campaign(checkpoint, snapshots=_SNAPSHOTS)
        resumed_checkpointer = CampaignCheckpointer(
            partial,
            checkpoint.scenario,
            prior_stability=checkpoint.stability,
            prior_metric_series=checkpoint.metric_series,
        )
        resumed_campaign.run(
            checkpointer=resumed_checkpointer,
            start=checkpoint.completed,
            previous=checkpoint.last_observations,
            engine=engine,
        )
        assert resumed_checkpointer.metric_series == full_checkpointer.metric_series
        manifest = json.loads((partial / "checkpoint.json").read_text())
        full_manifest = json.loads((full_directory / "checkpoint.json").read_text())
        assert manifest["metric_series"] == full_manifest["metric_series"]

    def test_registry_series_matches_persisted_series(self, uninterrupted):
        _, checkpointer = uninterrupted
        with obs.observed() as registry:
            campaign = _campaign()
            campaign.run()
        assert registry.series(CAMPAIGN_SERIES) == checkpointer.metric_series

    def test_row_fields_are_json_scalars(self):
        campaign = _campaign(snapshots=1)
        result = campaign.run()
        row = snapshot_metrics_row(campaign, result.snapshots[0])
        assert json.loads(json.dumps(row)) == row
