"""Property tests: registry merges are order-independent.

The parallel build and any future multi-process publisher fold per-shard
registries into one; correctness of that fold is exactly commutativity +
associativity of :meth:`MetricsRegistry.merge` per metric family.  Values
are integers so equality is exact (float addition would only be
order-independent up to rounding).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.obs.registry import MetricsRegistry

_NAMES = st.sampled_from(["a", "b.c", "probes", "cache"])
_LABELS = st.dictionaries(
    st.sampled_from(["kind", "outcome", "stage"]),
    st.sampled_from(["x", "y", "z"]),
    max_size=2,
)

_COUNTER_OPS = st.lists(
    st.tuples(_NAMES, st.integers(min_value=0, max_value=10**6), _LABELS),
    max_size=12,
)
_GAUGE_OPS = st.lists(
    st.tuples(_NAMES, st.integers(min_value=-100, max_value=10**6), _LABELS),
    max_size=8,
)
_HISTOGRAM_OPS = st.lists(
    st.tuples(_NAMES, st.integers(min_value=0, max_value=100), _LABELS),
    max_size=12,
)


def _build(counters, gauges, histograms) -> MetricsRegistry:
    registry = MetricsRegistry()
    for name, amount, labels in counters:
        registry.inc(name, amount, **labels)
    for name, value, labels in gauges:
        registry.set_gauge(name, value, **labels)
    for name, value, labels in histograms:
        registry.observe(name, value, **labels)
    return registry


_REGISTRIES = st.builds(_build, _COUNTER_OPS, _GAUGE_OPS, _HISTOGRAM_OPS)


def _merged(*registries: MetricsRegistry) -> dict:
    target = MetricsRegistry()
    for registry in registries:
        target.merge(registry)
    return target.to_json()


@settings(max_examples=60, deadline=None)
@given(_REGISTRIES, _REGISTRIES)
def test_merge_commutes(one, two):
    assert _merged(one, two) == _merged(two, one)


@settings(max_examples=60, deadline=None)
@given(_REGISTRIES, _REGISTRIES, _REGISTRIES)
def test_merge_associates(one, two, three):
    left = MetricsRegistry().merge(one).merge(two)
    right = MetricsRegistry().merge(two).merge(three)
    assert (
        MetricsRegistry().merge(left).merge(three).to_json()
        == MetricsRegistry().merge(one).merge(right).to_json()
    )


@settings(max_examples=40, deadline=None)
@given(_REGISTRIES)
def test_merge_into_empty_is_identity(registry):
    merged = MetricsRegistry().merge(registry).to_json()
    assert merged == registry.to_json()


@settings(max_examples=40, deadline=None)
@given(_REGISTRIES)
def test_merge_survives_json_round_trip(registry):
    rebuilt = MetricsRegistry.from_json(registry.to_json())
    assert MetricsRegistry().merge(rebuilt).to_json() == registry.to_json()
