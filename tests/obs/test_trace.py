"""Tests for span tracing, the enable switch, and the event sink."""

import io
import json

import pytest

from repro import obs
from repro.errors import DatasetError
from repro.obs.trace import NOOP_SPAN, TRACER


class TestEnableSwitch:
    def test_disabled_by_default_and_helpers_noop(self):
        assert not obs.is_enabled()
        obs.add("x", 5)
        obs.set_gauge("g", 1)
        obs.observe("h", 0.5)
        assert obs.metrics().counter_total("x") == 0
        assert obs.metrics().gauge_value("g") is None

    def test_disabled_span_is_shared_noop(self):
        assert obs.span("a") is NOOP_SPAN
        assert obs.trace("b") is NOOP_SPAN
        with obs.span("a"):
            assert TRACER.depth() == 0

    def test_observed_installs_fresh_registry_and_restores(self):
        outer = obs.metrics()
        with obs.observed() as registry:
            assert obs.is_enabled()
            assert obs.metrics() is registry
            assert registry is not outer
            obs.add("x", 2)
            assert registry.counter_total("x") == 2
        assert not obs.is_enabled()
        assert obs.metrics() is outer

    def test_observed_restores_on_exception(self):
        try:
            with obs.observed():
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert not obs.is_enabled()

    def test_observed_scopes_nest(self):
        with obs.observed() as outer:
            obs.add("x")
            with obs.observed() as inner:
                obs.add("x")
                assert inner.counter_total("x") == 1
            assert obs.metrics() is outer
            assert outer.counter_total("x") == 1


class TestSpans:
    def test_root_span_records_to_registry(self):
        with obs.observed() as registry:
            with obs.trace("resolve", source="union"):
                pass
        [span] = registry.spans
        assert span["name"] == "resolve"
        assert span["attrs"] == {"source": "union"}
        assert span["seconds"] >= 0

    def test_children_nest_and_only_root_is_recorded(self):
        with obs.observed() as registry:
            with obs.trace("outer"):
                with obs.span("middle"):
                    with obs.span("inner"):
                        pass
        [root] = registry.spans
        [middle] = root["children"]
        [inner] = middle["children"]
        assert (root["name"], middle["name"], inner["name"]) == (
            "outer", "middle", "inner",
        )

    def test_span_captures_counter_deltas(self):
        with obs.observed() as registry:
            obs.add("before", 5)
            with obs.trace("work"):
                obs.add("index.observations.indexed", 7)
                obs.add("session.cache", 2, kind="report", outcome="hit")
        [span] = registry.spans
        assert span["counters"] == {
            "index.observations.indexed": 7,
            "session.cache{kind=report,outcome=hit}": 2,
        }
        assert "before" not in span["counters"]

    def test_name_attribute_does_not_collide_with_span_name(self):
        with obs.observed() as registry:
            with obs.span("engine.report", name="union"):
                pass
        assert registry.spans[0]["attrs"] == {"name": "union"}

    def test_stack_unwinds_on_exception(self):
        with obs.observed() as registry:
            try:
                with obs.trace("failing"):
                    raise ValueError("boom")
            except ValueError:
                pass
            assert TRACER.depth() == 0
        assert registry.spans[0]["name"] == "failing"


class TestEventSink:
    def test_emit_writes_jsonl(self):
        stream = io.StringIO()
        with obs.observed(sink=obs.EventSink(stream)):
            obs.emit("index.ingest", observations=5, source="union")
        [line] = stream.getvalue().strip().splitlines()
        assert json.loads(line) == {
            "event": "index.ingest", "observations": 5, "source": "union",
        }

    def test_emit_without_sink_is_noop(self):
        with obs.observed():
            obs.emit("quiet", n=1)  # no sink installed: must not raise

    def test_emit_when_disabled_is_noop(self):
        stream = io.StringIO()
        sink = obs.EventSink(stream)
        previous = obs.set_sink(sink)
        try:
            obs.emit("dropped")
        finally:
            obs.set_sink(previous)
        assert stream.getvalue() == ""
        assert sink.emitted == 0

    def test_file_sink_appends(self, tmp_path):
        path = tmp_path / "events.jsonl"
        with obs.EventSink(path) as sink:
            sink.emit("one", a=1)
        with obs.EventSink(path) as sink:
            sink.emit("two", b=2)
        lines = path.read_text().strip().splitlines()
        assert [json.loads(line)["event"] for line in lines] == ["one", "two"]


class TestEventSinkLifecycle:
    def test_emit_after_close_raises(self):
        sink = obs.EventSink(io.StringIO())
        sink.emit("before")
        sink.close()
        with pytest.raises(DatasetError, match="closed"):
            sink.emit("after")

    def test_emit_after_close_raises_for_path_target(self, tmp_path):
        sink = obs.EventSink(tmp_path / "events.jsonl")
        sink.close()
        with pytest.raises(DatasetError, match="closed"):
            sink.emit("after")

    def test_close_is_idempotent(self):
        sink = obs.EventSink(io.StringIO())
        sink.close()
        sink.close()
        assert sink.closed

    def test_closing_borrowed_stream_leaves_it_open(self):
        stream = io.StringIO()
        sink = obs.EventSink(stream)
        sink.close()
        assert not stream.closed  # borrowed: lifecycle belongs to the caller
        stream.write("still usable\n")

    def test_closing_owned_file_closes_it(self, tmp_path):
        sink = obs.EventSink(tmp_path / "events.jsonl")
        handle = sink._stream
        sink.close()
        assert handle.closed

    def test_context_manager_reentry_rejected(self, tmp_path):
        sink = obs.EventSink(tmp_path / "events.jsonl")
        with sink:
            sink.emit("inside")
        with pytest.raises(DatasetError, match="re-enter"):
            with sink:
                pass

    def test_each_line_is_flushed_durably(self, tmp_path):
        # Per-line flush: every emitted event is on disk before the next
        # emit, so a killed process leaves a readable prefix.
        path = tmp_path / "events.jsonl"
        sink = obs.EventSink(path)
        for n in range(3):
            sink.emit("tick", n=n)
            lines = path.read_text().splitlines()
            assert len(lines) == n + 1
            assert json.loads(lines[-1]) == {"event": "tick", "n": n}
        sink.close()

    def test_closed_property_tracks_state(self):
        sink = obs.EventSink(io.StringIO())
        assert not sink.closed
        with sink:
            pass
        assert sink.closed
