"""Tests for the ``--metrics FILE`` flag and registry-backed CLI surfaces."""

import json

import pytest

from repro import obs
from repro.cli import main
from repro.obs.registry import MetricsRegistry


@pytest.fixture()
def datasets(tmp_path, capsys):
    directory = tmp_path / "data"
    assert main(
        ["scan", "--scale", "0.05", "--seed", "3",
         "--output", str(directory), "--sources", "active", "censys"]
    ) == 0
    capsys.readouterr()
    return [str(directory / "active.jsonl"), str(directory / "censys.jsonl")]


class TestResolveMetrics:
    def test_resolve_emits_metrics_document(self, datasets, tmp_path, capsys):
        metrics_file = tmp_path / "metrics.json"
        exit_code = main(
            ["resolve", *datasets, "--output", str(tmp_path / "out"),
             "--metrics", str(metrics_file)]
        )
        assert exit_code == 0
        assert f"wrote {metrics_file}" in capsys.readouterr().out
        document = json.loads(metrics_file.read_text())
        assert document["counters"]["index.observations.indexed"][0]["value"] > 0
        assert document["counters"]["index.observations.observed"][0]["value"] > 0
        [root] = document["spans"]
        assert root["name"] == "cli.resolve"
        assert root["seconds"] > 0
        child_names = [child["name"] for child in root["children"]]
        assert "engine.index" in child_names
        assert "engine.report" in child_names
        assert root["counters"]["index.observations.indexed"] > 0

    def test_prometheus_rendering_round_trips_through_json(self, datasets, tmp_path):
        # One run, captured in an outer observed() scope: the registry the
        # command filled must render identical Prometheus text before and
        # after a JSON export/import cycle (timings included, since both
        # renderings come from the same samples).
        with obs.observed() as registry:
            assert main(
                ["resolve", *datasets, "--output", str(tmp_path / "out")]
            ) == 0
        prometheus = registry.prometheus_text()
        assert "# TYPE index_observations_indexed counter" in prometheus
        rebuilt = MetricsRegistry.from_json(json.loads(json.dumps(registry.to_json())))
        assert rebuilt.prometheus_text() == prometheus

    def test_prom_suffix_writes_prometheus_text(self, datasets, tmp_path):
        prom_file = tmp_path / "metrics.prom"
        assert main(
            ["resolve", *datasets, "--output", str(tmp_path / "out"),
             "--metrics", str(prom_file)]
        ) == 0
        text = prom_file.read_text()
        assert "# TYPE index_observations_indexed counter" in text
        assert "index_observations_indexed " in text

    def test_metrics_off_leaves_obs_disabled(self, datasets, tmp_path):
        assert main(
            ["resolve", *datasets, "--output", str(tmp_path / "out")]
        ) == 0
        assert not obs.is_enabled()

    def test_outputs_identical_with_and_without_metrics(self, datasets, tmp_path):
        assert main(
            ["resolve", *datasets, "--output", str(tmp_path / "plain")]
        ) == 0
        assert main(
            ["resolve", *datasets, "--output", str(tmp_path / "instr"),
             "--metrics", str(tmp_path / "m.json")]
        ) == 0
        for artifact in ("ipv4_alias_sets.json", "ipv6_alias_sets.json", "report.md"):
            assert (tmp_path / "instr" / artifact).read_bytes() == (
                tmp_path / "plain" / artifact
            ).read_bytes(), artifact

    def test_stats_reports_build_path_from_registry(self, datasets, tmp_path, capsys):
        exit_code = main(
            ["resolve", *datasets, "--output", str(tmp_path / "out"), "--stats"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "build path:" in output
        assert obs.metrics().last_build_stats() is not None


class TestValidateMetrics:
    def test_validate_surfaces_probe_counters_and_summary(self, tmp_path, capsys):
        metrics_file = tmp_path / "validate.json"
        exit_code = main(
            ["validate", "--scale", "0.05", "--seed", "3",
             "--validators", "midar", "ally", "--metrics", str(metrics_file)]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "shared sample bank" in output
        assert "% of sample demand saved" in output
        document = json.loads(metrics_file.read_text())
        probes = {
            entry["labels"]["outcome"]: entry["value"]
            for entry in document["counters"]["validation.probes"]
        }
        assert probes["issued"] > 0
        assert probes["reused"] > 0
        cache = {
            (entry["labels"]["kind"], entry["labels"]["outcome"]): entry["value"]
            for entry in document["counters"]["session.cache"]
        }
        assert cache[("validation", "miss")] == 2


class TestLongitudinalMetrics:
    def test_campaign_series_lands_in_registry_and_checkpoint(self, tmp_path, capsys):
        metrics_file = tmp_path / "campaign.json"
        checkpoint = tmp_path / "ckpt"
        exit_code = main(
            ["longitudinal", "--scale", "0.05", "--seed", "3",
             "--snapshots", "2", "--ipv4-only",
             "--checkpoint", str(checkpoint), "--metrics", str(metrics_file)]
        )
        assert exit_code == 0
        capsys.readouterr()
        document = json.loads(metrics_file.read_text())
        series = document["series"]["campaign.snapshots"]
        assert [row["snapshot"] for row in series] == [0, 1]
        assert all(row["observations"] > 0 for row in series)
        manifest = json.loads((checkpoint / "checkpoint.json").read_text())
        assert manifest["metric_series"] == series
