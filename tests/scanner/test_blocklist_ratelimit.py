"""Tests for the blocklist and the token bucket."""

import pytest

from repro.scanner.blocklist import Blocklist
from repro.scanner.ratelimit import TokenBucket


class TestBlocklist:
    def test_single_address(self):
        blocklist = Blocklist(["192.0.2.1"])
        assert "192.0.2.1" in blocklist
        assert "192.0.2.2" not in blocklist

    def test_prefix(self):
        blocklist = Blocklist(["10.0.0.0/24"])
        assert "10.0.0.7" in blocklist
        assert "10.0.1.7" not in blocklist

    def test_ipv6_prefix(self):
        blocklist = Blocklist(["2001:db8::/32"])
        assert "2001:db8::1" in blocklist
        assert "2001:db9::1" not in blocklist

    def test_filter(self):
        blocklist = Blocklist(["10.0.0.0/24", "192.0.2.5"])
        targets = ["10.0.0.1", "10.1.0.1", "192.0.2.5", "192.0.2.6"]
        assert blocklist.filter(targets) == ["10.1.0.1", "192.0.2.6"]

    def test_len_and_add(self):
        blocklist = Blocklist()
        assert len(blocklist) == 0
        blocklist.add("10.0.0.0/8")
        blocklist.add("192.0.2.1")
        assert len(blocklist) == 2

    def test_families_do_not_interfere(self):
        blocklist = Blocklist(["0.0.0.0/0"])
        assert "2001:db8::1" not in blocklist


class TestTokenBucket:
    def test_first_probe_at_start_time(self):
        bucket = TokenBucket(rate=100.0, start_time=10.0)
        assert bucket.next_timestamp() == 10.0

    def test_rate_spacing(self):
        bucket = TokenBucket(rate=10.0)
        timestamps = [bucket.next_timestamp() for _ in range(11)]
        assert timestamps[0] == 0.0
        assert timestamps[10] == pytest.approx(1.0)

    def test_burst_allows_simultaneous_probes(self):
        bucket = TokenBucket(rate=1.0, burst=5)
        timestamps = [bucket.next_timestamp() for _ in range(5)]
        assert timestamps == [0.0] * 5
        assert bucket.next_timestamp() == pytest.approx(1.0)

    def test_duration(self):
        bucket = TokenBucket(rate=100.0)
        assert bucket.duration(1) == 0.0
        assert bucket.duration(101) == pytest.approx(1.0)

    def test_sent_counter(self):
        bucket = TokenBucket(rate=10.0)
        for _ in range(7):
            bucket.next_timestamp()
        assert bucket.sent == 7

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0.0)
        with pytest.raises(ValueError):
            TokenBucket(rate=1.0, burst=0)
