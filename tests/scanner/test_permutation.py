"""Tests for the ZMap-style cyclic permutation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.scanner.permutation import CyclicPermutation, next_prime


class TestNextPrime:
    def test_small_values(self):
        assert next_prime(1) == 2
        assert next_prime(2) == 3
        assert next_prime(10) == 11
        assert next_prime(13) == 17

    def test_larger_value(self):
        assert next_prime(65536) == 65537


class TestCyclicPermutation:
    def test_covers_every_index_exactly_once(self):
        permutation = CyclicPermutation(100, seed=3)
        indices = list(permutation.indices())
        assert sorted(indices) == list(range(100))

    def test_not_identity_order(self):
        permutation = CyclicPermutation(500, seed=1)
        assert list(permutation.indices()) != list(range(500))

    def test_different_seeds_give_different_orders(self):
        a = list(CyclicPermutation(200, seed=1).indices())
        b = list(CyclicPermutation(200, seed=2).indices())
        assert a != b

    def test_same_seed_is_deterministic(self):
        assert list(CyclicPermutation(77, seed=9).indices()) == list(CyclicPermutation(77, seed=9).indices())

    def test_order_reorders_items(self):
        items = [f"host-{i}" for i in range(25)]
        ordered = CyclicPermutation(25, seed=4).order(items)
        assert sorted(ordered) == sorted(items)
        assert ordered != items

    def test_order_rejects_wrong_length(self):
        with pytest.raises(ValueError):
            CyclicPermutation(5, seed=1).order([1, 2, 3])

    def test_size_one(self):
        assert list(CyclicPermutation(1, seed=0).indices()) == [0]

    def test_invalid_size_rejected(self):
        with pytest.raises(ValueError):
            CyclicPermutation(0)


@given(n=st.integers(min_value=1, max_value=400), seed=st.integers(min_value=0, max_value=1000))
def test_permutation_property(n, seed):
    indices = list(CyclicPermutation(n, seed=seed).indices())
    assert sorted(indices) == list(range(n))
