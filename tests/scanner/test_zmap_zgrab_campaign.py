"""Tests for the SYN scanner, the grabber, and the two-phase campaign."""

import pytest

from repro.net.addresses import AddressFamily
from repro.scanner.blocklist import Blocklist
from repro.scanner.campaign import ScanCampaign
from repro.scanner.zgrab import ZgrabScanner
from repro.scanner.zmap import ZmapScanner
from repro.simnet.device import ServiceType
from repro.simnet.network import VantagePoint
from repro.simnet.topology import generate_topology, small_topology_config

VP = VantagePoint(name="scan-vp")


@pytest.fixture(scope="module")
def network():
    # Rate limiting is exercised in dedicated tests; exact-coverage assertions
    # here need every probe to reach its target.
    config = small_topology_config(
        seed=23,
        loss_rate=0.0,
        cloud_rate_limited_fraction=0.0,
        isp_rate_limited_fraction=0.0,
    )
    return generate_topology(config)


@pytest.fixture(scope="module")
def ipv4_targets(network):
    return sorted(network.all_addresses(AddressFamily.IPV4))


class TestZmap:
    def test_finds_exactly_the_ssh_exposed_addresses(self, network, ipv4_targets):
        scanner = ZmapScanner(network, VP, seed=1)
        result = scanner.scan(ipv4_targets, 22)
        expected = {
            address
            for device in network.devices()
            for address in device.service_addresses(ServiceType.SSH)
            if address in set(ipv4_targets)
        }
        assert set(result.responsive) == expected
        assert result.probed == len(ipv4_targets)

    def test_outcome_counters_sum_to_probed(self, network, ipv4_targets):
        result = ZmapScanner(network, VP, seed=1).scan(ipv4_targets, 179)
        assert sum(result.outcomes.values()) == result.probed

    def test_blocklist_excludes_targets(self, network, ipv4_targets):
        blocklist = Blocklist([ipv4_targets[0]])
        result = ZmapScanner(network, VP, blocklist=blocklist, seed=1).scan(ipv4_targets, 22)
        assert result.probed == len(ipv4_targets) - 1
        assert ipv4_targets[0] not in result.responsive

    def test_empty_target_list(self, network):
        result = ZmapScanner(network, VP).scan([], 22)
        assert result.probed == 0
        assert result.responsive == ()

    def test_timestamps_advance_with_rate(self, network, ipv4_targets):
        result = ZmapScanner(network, VP, probes_per_second=1000.0).scan(ipv4_targets, 22)
        assert result.finished_at > result.started_at


class TestZgrab:
    def test_ssh_grab_returns_identifier_records(self, network):
        ssh_addresses = [
            address
            for device in network.devices()
            for address in device.service_addresses(ServiceType.SSH)
        ][:50]
        records = ZgrabScanner(network, VP).grab(ServiceType.SSH, ssh_addresses)
        assert records
        assert all(record.success for record in records)
        assert any(record.has_identifier for record in records)

    def test_grab_skips_non_service_addresses(self, network):
        bare = [
            device.addresses()[0]
            for device in network.devices()
            if not device.runs_service(ServiceType.BGP)
        ][:20]
        records = ZgrabScanner(network, VP).grab(ServiceType.BGP, bare)
        assert records == []


class TestCampaign:
    def test_tcp_campaign_has_both_phases(self, network, ipv4_targets):
        campaign = ScanCampaign(network, VP, seed=2)
        result = campaign.scan_service(ServiceType.SSH, ipv4_targets)
        assert result.syn_result is not None
        assert set(result.responsive_addresses) <= set(result.syn_result.responsive)
        assert result.finished_at >= result.started_at
        assert result.identified_addresses

    def test_snmp_campaign_has_no_syn_phase(self, network, ipv4_targets):
        campaign = ScanCampaign(network, VP, seed=2)
        result = campaign.scan_service(ServiceType.SNMPV3, ipv4_targets)
        assert result.syn_result is None
        expected = {
            address
            for device in network.devices()
            for address in device.service_addresses(ServiceType.SNMPV3)
            if address in set(ipv4_targets)
        }
        assert set(result.responsive_addresses) == expected

    def test_bgp_identified_subset_of_responsive(self, network, ipv4_targets):
        campaign = ScanCampaign(network, VP, seed=2)
        result = campaign.scan_service(ServiceType.BGP, ipv4_targets)
        # Some speakers close immediately without an OPEN: responsive but no identifier.
        assert set(result.identified_addresses) <= set(result.responsive_addresses)
