"""Tests for the probe-level behaviour of the simulated Internet."""

import pytest

from repro.errors import SimulationError
from repro.net.addresses import AddressFamily
from repro.protocols.bgp.client import BgpScanClient
from repro.protocols.bgp.speaker import BgpSpeakerConfig
from repro.protocols.snmp.client import SnmpScanClient
from repro.protocols.snmp.engine import SnmpEngineConfig
from repro.protocols.ssh.client import SshScanClient
from repro.protocols.ssh.server import SshServerConfig
from repro.simnet.asn import AsRegistry, AsRole, AutonomousSystem
from repro.simnet.churn import ChurnEvent, ChurnModel
from repro.simnet.device import Device, DeviceRole, Interface, ServiceType
from repro.simnet.icmp_policy import IcmpUnreachablePolicy
from repro.simnet.network import ProbeOutcome, SimulatedInternet, VantagePoint

VP = VantagePoint(name="test-vp")


def build_network(rate_limit_threshold=None, loss_rate=0.0, churn=None):
    registry = AsRegistry()
    registry.add(
        AutonomousSystem(
            asn=3320, name="ISP-A", role=AsRole.ISP, rate_limit_threshold=rate_limit_threshold
        )
    )
    registry.add(AutonomousSystem(asn=14061, name="Cloud-A", role=AsRole.CLOUD))
    router = Device(
        device_id="rtr-1",
        role=DeviceRole.BORDER_ROUTER,
        home_asn=3320,
        interfaces=[
            Interface(name="ge-0", address="10.0.0.1", asn=3320),
            Interface(name="ge-1", address="10.0.0.2", asn=3320),
            Interface(name="v6", address="2001:db8::1", asn=3320),
        ],
        ssh_config=SshServerConfig.generate("rtr-1"),
        bgp_config=BgpSpeakerConfig(asn=3320, bgp_identifier="10.0.0.1"),
        snmp_config=SnmpEngineConfig.generate("rtr-1"),
        service_acl={ServiceType.SSH: frozenset({"10.0.0.1"})},
        icmp_unreachable_policy=IcmpUnreachablePolicy.FROM_PRIMARY,
    )
    server = Device(
        device_id="srv-1",
        role=DeviceRole.SERVER,
        home_asn=14061,
        interfaces=[Interface(name="eth0", address="100.64.0.10", asn=14061)],
        ssh_config=SshServerConfig.generate("srv-1"),
    )
    bare = Device(
        device_id="bare-1",
        role=DeviceRole.SERVER,
        home_asn=14061,
        interfaces=[Interface(name="eth0", address="100.64.0.20", asn=14061)],
    )
    return SimulatedInternet(
        registry=registry,
        devices=[router, server, bare],
        churn=churn,
        seed=3,
        loss_rate=loss_rate,
    )


class TestOwnership:
    def test_device_lookup_by_address(self):
        network = build_network()
        assert network.device_for("10.0.0.2").device_id == "rtr-1"
        assert network.device_for("203.0.113.1") is None

    def test_duplicate_device_rejected(self):
        network = build_network()
        with pytest.raises(SimulationError):
            network.add_device(network.device("rtr-1"))

    def test_duplicate_address_rejected(self):
        network = build_network()
        clone = Device(
            device_id="other",
            role=DeviceRole.SERVER,
            home_asn=14061,
            interfaces=[Interface(name="eth0", address="100.64.0.10", asn=14061)],
        )
        with pytest.raises(SimulationError):
            network.add_device(clone)

    def test_asn_of(self):
        network = build_network()
        assert network.asn_of("10.0.0.1") == 3320
        assert network.asn_of("100.64.0.10") == 14061
        assert network.asn_of("198.18.0.1") is None

    def test_all_addresses_by_family(self):
        network = build_network()
        assert "2001:db8::1" in network.all_addresses(AddressFamily.IPV6)
        assert "2001:db8::1" not in network.all_addresses(AddressFamily.IPV4)
        assert len(network.all_addresses()) == 5

    def test_ground_truth_sets(self):
        network = build_network()
        ipv4_sets = network.ground_truth_alias_sets(AddressFamily.IPV4)
        assert frozenset({"10.0.0.1", "10.0.0.2"}) in ipv4_sets
        all_sets = network.ground_truth_alias_sets()
        assert frozenset({"10.0.0.1", "10.0.0.2", "2001:db8::1"}) in all_sets

    def test_service_address_count(self):
        network = build_network()
        # Router SSH ACL restricts to one address; server adds one more.
        assert network.service_address_count(ServiceType.SSH, AddressFamily.IPV4) == 2
        assert network.service_address_count(ServiceType.SNMPV3, AddressFamily.IPV4) == 2


class TestTcpProbing:
    def test_ssh_on_allowed_address_is_responsive(self):
        network = build_network()
        assert network.probe_tcp_syn("10.0.0.1", 22, VP) is ProbeOutcome.RESPONSIVE

    def test_ssh_on_acl_blocked_address_is_filtered(self):
        network = build_network()
        assert network.probe_tcp_syn("10.0.0.2", 22, VP) is ProbeOutcome.FILTERED

    def test_port_without_service_is_closed(self):
        network = build_network()
        assert network.probe_tcp_syn("100.64.0.10", 179, VP) is ProbeOutcome.CLOSED
        assert network.probe_tcp_syn("100.64.0.20", 22, VP) is ProbeOutcome.CLOSED

    def test_unknown_address_unreachable(self):
        network = build_network()
        assert network.probe_tcp_syn("198.18.0.1", 22, VP) is ProbeOutcome.UNREACHABLE


class TestApplicationConnections:
    def test_ssh_scan_through_network(self):
        network = build_network()
        connection = network.connect("100.64.0.10", ServiceType.SSH, VP)
        record = SshScanClient().scan("100.64.0.10", connection)
        assert record.has_identifier

    def test_bgp_scan_through_network(self):
        network = build_network()
        connection = network.connect("10.0.0.2", ServiceType.BGP, VP)
        record = BgpScanClient().scan("10.0.0.2", connection)
        assert record.open_message.bgp_identifier == "10.0.0.1"

    def test_snmp_scan_through_network(self):
        network = build_network()
        connection = network.connect("10.0.0.1", ServiceType.SNMPV3, VP)
        record = SnmpScanClient().scan("10.0.0.1", connection)
        assert record.has_identifier

    def test_connect_returns_none_when_filtered(self):
        network = build_network()
        assert network.connect("10.0.0.2", ServiceType.SSH, VP) is None
        assert network.connect("100.64.0.20", ServiceType.SSH, VP) is None
        assert network.connect("198.18.0.1", ServiceType.SSH, VP) is None


class TestRateLimiting:
    def test_single_vantage_gets_rate_limited(self):
        network = build_network(rate_limit_threshold=1)
        vantage = VantagePoint(name="single")
        outcomes = [network.probe_tcp_syn("10.0.0.1", 22, vantage) for _ in range(30)]
        assert outcomes[0] is ProbeOutcome.RESPONSIVE
        assert ProbeOutcome.RATE_LIMITED in outcomes[1:]

    def test_distributed_vantage_not_rate_limited(self):
        network = build_network(rate_limit_threshold=1)
        vantage = VantagePoint(name="distributed", distributed=True)
        outcomes = [network.probe_tcp_syn("10.0.0.1", 22, vantage) for _ in range(30)]
        assert ProbeOutcome.RATE_LIMITED not in outcomes

    def test_reset_rate_limits(self):
        network = build_network(rate_limit_threshold=1)
        vantage = VantagePoint(name="single")
        for _ in range(30):
            network.probe_tcp_syn("10.0.0.1", 22, vantage)
        network.reset_rate_limits()
        assert network.probe_tcp_syn("10.0.0.1", 22, vantage) is ProbeOutcome.RESPONSIVE


class TestLossAndChurn:
    def test_loss_rate_zero_never_loses(self):
        network = build_network(loss_rate=0.0)
        outcomes = {network.probe_tcp_syn("100.64.0.10", 22, VP) for _ in range(10)}
        assert outcomes == {ProbeOutcome.RESPONSIVE}

    def test_full_loss_drops_everything(self):
        network = build_network(loss_rate=1.0)
        # Loss is checked after rate limiting, before service lookup.
        assert network.probe_tcp_syn("100.64.0.10", 22, VP) is ProbeOutcome.LOST

    def test_churn_moves_ownership_after_switch_time(self):
        churn = ChurnModel([ChurnEvent(address="100.64.0.10", switch_time=100.0, new_device_id="rtr-1")])
        network = build_network(churn=churn)
        assert network.device_for("100.64.0.10", now=0.0).device_id == "srv-1"
        assert network.device_for("100.64.0.10", now=200.0).device_id == "rtr-1"


class TestIpidAndIcmp:
    def test_sample_ipid_returns_value(self):
        network = build_network()
        value = network.sample_ipid("10.0.0.1", VP, now=1.0)
        assert value is not None
        assert 0 <= value < 65536

    def test_sample_ipid_unknown_address(self):
        network = build_network()
        assert network.sample_ipid("198.18.0.1", VP) is None

    def test_icmp_from_primary_interface(self):
        network = build_network()
        message = network.probe_udp_closed_port("10.0.0.2", VP)
        assert message is not None
        assert message.is_port_unreachable
        # FROM_PRIMARY: lowest same-family address is 10.0.0.1.
        assert message.source == "10.0.0.1"
        assert message.quoted_destination == "10.0.0.2"

    def test_icmp_from_probed_address_for_servers(self):
        network = build_network()
        message = network.probe_udp_closed_port("100.64.0.10", VP)
        # Server policy in this fixture is FROM_PROBED (default).
        assert message.source == "100.64.0.10"
