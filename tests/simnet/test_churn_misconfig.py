"""Tests for the churn model and misconfiguration injection."""

import random

from repro.protocols.bgp.speaker import BgpSpeakerConfig
from repro.protocols.ssh.server import SshServerConfig
from repro.simnet.churn import ChurnEvent, ChurnModel
from repro.simnet.device import Device, DeviceRole, Interface, ServiceType
from repro.simnet.misconfig import (
    apply_service_acl,
    assign_duplicate_bgp_identifiers,
    assign_shared_ssh_keys,
    copy_ssh_config_to_group,
)


def ssh_device(index, addresses=("10.0.0.1",)):
    return Device(
        device_id=f"dev-{index}",
        role=DeviceRole.SERVER,
        home_asn=1,
        interfaces=[
            Interface(name=f"e{i}", address=address, asn=1) for i, address in enumerate(addresses)
        ],
        ssh_config=SshServerConfig.generate(f"dev-{index}"),
    )


class TestChurnModel:
    def test_owner_override_before_and_after(self):
        model = ChurnModel([ChurnEvent(address="10.0.0.1", switch_time=50.0, new_device_id="d2")])
        assert model.owner_override("10.0.0.1", 10.0) is None
        assert model.owner_override("10.0.0.1", 60.0) == "d2"
        assert model.owner_override("10.0.0.9", 60.0) is None

    def test_sample_respects_fraction(self):
        addresses = [f"10.0.0.{i}" for i in range(1, 101)]
        model = ChurnModel.sample(addresses, ["d1", "d2"], fraction=0.1, switch_time=5.0, rng=random.Random(1))
        assert len(model) == 10
        assert set(model.churned_addresses()) <= set(addresses)

    def test_sample_zero_fraction_empty(self):
        model = ChurnModel.sample(["10.0.0.1"], ["d1"], fraction=0.0, switch_time=5.0, rng=random.Random(1))
        assert len(model) == 0


class TestSharedSshKeys:
    def test_groups_share_fingerprint(self):
        devices = [ssh_device(i) for i in range(40)]
        groups = assign_shared_ssh_keys(devices, fraction=0.5, group_count=2, rng=random.Random(3))
        assert groups
        for group in groups:
            fingerprints = {device.ssh_config.host_key.fingerprint() for device in group}
            assert len(fingerprints) == 1

    def test_unselected_devices_keep_unique_keys(self):
        devices = [ssh_device(i) for i in range(40)]
        assign_shared_ssh_keys(devices, fraction=0.25, group_count=2, rng=random.Random(3))
        fingerprints = [device.ssh_config.host_key.fingerprint() for device in devices]
        # At least the untouched 30 devices keep distinct keys.
        assert len(set(fingerprints)) >= 30

    def test_too_few_devices_no_groups(self):
        devices = [ssh_device(0)]
        assert assign_shared_ssh_keys(devices, fraction=1.0, group_count=2, rng=random.Random(3)) == []

    def test_copy_ssh_config_to_group(self):
        source = ssh_device(0)
        targets = [ssh_device(1), ssh_device(2)]
        copy_ssh_config_to_group(source, targets)
        for target in targets:
            assert target.ssh_config.host_key == source.ssh_config.host_key
            assert target.ssh_config.kex_init == source.ssh_config.kex_init


class TestDuplicateBgpIdentifiers:
    def test_duplicates_assigned(self):
        devices = []
        for i in range(20):
            device = ssh_device(i, addresses=(f"10.0.{i}.1", f"10.0.{i}.2"))
            device.bgp_config = BgpSpeakerConfig(asn=100 + i, bgp_identifier=f"10.0.{i}.1")
            devices.append(device)
        affected = assign_duplicate_bgp_identifiers(devices, fraction=0.3, rng=random.Random(5))
        assert len(affected) == 6
        assert all(device.bgp_config.bgp_identifier == "1.1.1.1" for device in affected)

    def test_no_bgp_devices_no_effect(self):
        devices = [ssh_device(i) for i in range(5)]
        assert assign_duplicate_bgp_identifiers(devices, fraction=1.0, rng=random.Random(5)) == []


class TestServiceAcl:
    def test_acl_reduces_exposed_addresses(self):
        devices = [ssh_device(i, addresses=(f"10.1.{i}.1", f"10.1.{i}.2", f"10.1.{i}.3")) for i in range(10)]
        affected = apply_service_acl(devices, ServiceType.SSH, fraction=0.5, rng=random.Random(7))
        assert len(affected) == 5
        for device in affected:
            exposed = device.service_addresses(ServiceType.SSH)
            assert 1 <= len(exposed) < 3

    def test_single_address_devices_not_affected(self):
        devices = [ssh_device(i) for i in range(10)]
        assert apply_service_acl(devices, ServiceType.SSH, fraction=1.0, rng=random.Random(7)) == []
