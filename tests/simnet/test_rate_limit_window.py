"""Tests for time-windowed IDS rate limiting.

Intrusion-detection blocks are temporary: probes from the same vantage point
on a later day start from a clean slate.  This is what lets the active IPv6
campaign (run a day after the IPv4 campaign) keep its coverage even though
the IPv4 campaign exhausted some ASes' per-vantage thresholds.
"""

from repro.protocols.ssh.server import SshServerConfig
from repro.simnet.asn import AsRegistry, AsRole, AutonomousSystem
from repro.simnet.device import Device, DeviceRole, Interface
from repro.simnet.network import ProbeOutcome, SimulatedInternet, VantagePoint


def build_network(threshold=2, window=3600.0):
    registry = AsRegistry()
    registry.add(
        AutonomousSystem(
            asn=14061, name="Cloud", role=AsRole.CLOUD, rate_limit_threshold=threshold
        )
    )
    devices = [
        Device(
            device_id=f"srv-{i}",
            role=DeviceRole.SERVER,
            home_asn=14061,
            interfaces=[Interface(name="eth0", address=f"100.64.0.{i}", asn=14061)],
            ssh_config=SshServerConfig.generate(f"srv-{i}"),
        )
        for i in range(1, 21)
    ]
    return SimulatedInternet(
        registry=registry,
        devices=devices,
        seed=9,
        loss_rate=0.0,
        rate_limit_window=window,
    )


class TestRateLimitWindows:
    def test_probes_within_one_window_get_limited(self):
        network = build_network()
        vantage = VantagePoint(name="single")
        outcomes = [
            network.probe_tcp_syn(f"100.64.0.{i}", 22, vantage, now=float(i))
            for i in range(1, 21)
        ]
        assert ProbeOutcome.RATE_LIMITED in outcomes

    def test_next_window_starts_fresh(self):
        network = build_network(window=3600.0)
        vantage = VantagePoint(name="single")
        for i in range(1, 21):
            network.probe_tcp_syn(f"100.64.0.{i}", 22, vantage, now=float(i))
        # One hour later the same vantage point is under the threshold again.
        later = [
            network.probe_tcp_syn(f"100.64.0.{i}", 22, vantage, now=3600.0 + i)
            for i in range(1, 3)
        ]
        assert later == [ProbeOutcome.RESPONSIVE, ProbeOutcome.RESPONSIVE]

    def test_windows_are_per_vantage(self):
        network = build_network()
        first = VantagePoint(name="vp-1")
        second = VantagePoint(name="vp-2")
        for i in range(1, 21):
            network.probe_tcp_syn(f"100.64.0.{i}", 22, first, now=float(i))
        outcome = network.probe_tcp_syn("100.64.0.1", 22, second, now=30.0)
        assert outcome is ProbeOutcome.RESPONSIVE

    def test_distributed_vantage_never_limited_regardless_of_window(self):
        network = build_network(threshold=1)
        vantage = VantagePoint(name="fleet", distributed=True)
        outcomes = {
            network.probe_tcp_syn(f"100.64.0.{i}", 22, vantage, now=float(i)) for i in range(1, 21)
        }
        assert outcomes == {ProbeOutcome.RESPONSIVE}
