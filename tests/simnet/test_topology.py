"""Tests for the topology generator."""

import pytest

from repro.net.addresses import AddressFamily
from repro.simnet.asn import AsRole
from repro.simnet.device import DeviceRole
from repro.simnet.topology import TopologyConfig, generate_topology, small_topology_config


@pytest.fixture(scope="module")
def network():
    return generate_topology(small_topology_config(seed=11))


class TestStructure:
    def test_all_roles_present(self, network):
        roles = {autonomous_system.role for autonomous_system in network.registry}
        assert {AsRole.CLOUD, AsRole.ISP, AsRole.ENTERPRISE} <= roles

    def test_as_counts_match_config(self, network):
        config = small_topology_config(seed=11)
        assert len(network.registry.by_role(AsRole.CLOUD)) == config.n_cloud_ases
        assert len(network.registry.by_role(AsRole.ISP)) == config.n_isp_ases
        assert len(network.registry.by_role(AsRole.ENTERPRISE)) == config.n_enterprise_ases

    def test_every_interface_asn_registered(self, network):
        for device in network.devices():
            for interface in device.interfaces:
                assert interface.asn in network.registry

    def test_addresses_unique_across_devices(self, network):
        addresses = [address for device in network.devices() for address in device.addresses()]
        assert len(addresses) == len(set(addresses))

    def test_deterministic_given_seed(self):
        first = generate_topology(small_topology_config(seed=5))
        second = generate_topology(small_topology_config(seed=5))
        assert sorted(first.all_addresses()) == sorted(second.all_addresses())
        first_devices = {device.device_id: tuple(device.addresses()) for device in first.devices()}
        second_devices = {device.device_id: tuple(device.addresses()) for device in second.devices()}
        assert first_devices == second_devices

    def test_different_seeds_differ(self):
        first = generate_topology(small_topology_config(seed=5))
        second = generate_topology(small_topology_config(seed=6))
        assert sorted(first.all_addresses()) != sorted(second.all_addresses())


class TestServiceMix:
    def test_cloud_servers_run_ssh_not_bgp(self, network):
        servers = [device for device in network.devices() if device.role is DeviceRole.SERVER]
        assert servers
        assert all(device.ssh_config is not None for device in servers)
        assert all(device.bgp_config is None for device in servers)

    def test_some_routers_speak_bgp(self, network):
        speakers = [device for device in network.devices() if device.bgp_config is not None]
        assert speakers
        assert all(device.role is DeviceRole.BORDER_ROUTER for device in speakers)

    def test_bgp_identifier_is_first_interface_address(self, network):
        for device in network.devices():
            if device.bgp_config is not None and device.bgp_config.bgp_identifier != "1.1.1.1":
                assert device.bgp_config.bgp_identifier in device.ipv4_addresses()

    def test_snmp_mostly_on_routers(self, network):
        router_roles = {DeviceRole.CORE_ROUTER, DeviceRole.BORDER_ROUTER, DeviceRole.ACCESS_ROUTER}
        snmp_devices = [device for device in network.devices() if device.snmp_config is not None]
        assert snmp_devices
        router_share = sum(1 for device in snmp_devices if device.role in router_roles) / len(snmp_devices)
        assert router_share > 0.8

    def test_border_routers_can_span_multiple_ases(self, network):
        borders = [
            device
            for device in network.devices()
            if device.role is DeviceRole.BORDER_ROUTER and device.home_asn in
            {a.asn for a in network.registry.by_role(AsRole.ISP)}
        ]
        assert borders
        assert any(len(device.asns()) > 1 for device in borders)

    def test_dual_stack_devices_exist(self, network):
        assert any(device.is_dual_stack for device in network.devices())
        assert network.all_addresses(AddressFamily.IPV6)

    def test_some_devices_have_acls(self, network):
        assert any(device.service_acl for device in network.devices())

    def test_shared_ssh_keys_exist(self, network):
        fingerprints = {}
        for device in network.devices():
            if device.ssh_config is None:
                continue
            fingerprint = device.ssh_config.host_key.fingerprint()
            fingerprints.setdefault(fingerprint, []).append(device.device_id)
        assert any(len(device_ids) >= 2 for device_ids in fingerprints.values())


class TestScaling:
    def test_scale_multiplies_device_counts(self):
        small = generate_topology(small_topology_config(seed=3))
        large = generate_topology(small_topology_config(seed=3, scale=2.0))
        assert len(large.devices()) > 1.5 * len(small.devices())

    def test_scaled_helper_minimum_one(self):
        config = TopologyConfig(scale=0.001)
        assert config.scaled(10) == 1
