"""Tests for the AS registry and address allocation."""

import random

import pytest

from repro.errors import TopologyError
from repro.simnet.address_plan import InterfaceAddressPool, PrefixAllocator
from repro.simnet.asn import AsRegistry, AsRole, AutonomousSystem


class TestAsRegistry:
    def test_add_and_get(self):
        registry = AsRegistry()
        registry.add(AutonomousSystem(asn=14061, name="Cloud-1", role=AsRole.CLOUD))
        assert registry.get(14061).name == "Cloud-1"
        assert 14061 in registry
        assert len(registry) == 1

    def test_duplicate_asn_rejected(self):
        registry = AsRegistry()
        registry.add(AutonomousSystem(asn=1, name="A", role=AsRole.ISP))
        with pytest.raises(TopologyError):
            registry.add(AutonomousSystem(asn=1, name="B", role=AsRole.ISP))

    def test_unknown_asn_raises(self):
        with pytest.raises(TopologyError):
            AsRegistry().get(99)

    def test_invalid_asn_rejected(self):
        with pytest.raises(TopologyError):
            AutonomousSystem(asn=0, name="bad", role=AsRole.ISP)

    def test_by_role_and_roles(self):
        registry = AsRegistry()
        registry.add(AutonomousSystem(asn=1, name="A", role=AsRole.ISP))
        registry.add(AutonomousSystem(asn=2, name="B", role=AsRole.CLOUD))
        registry.add(AutonomousSystem(asn=3, name="C", role=AsRole.CLOUD))
        assert {a.asn for a in registry.by_role(AsRole.CLOUD)} == {2, 3}
        assert registry.roles() == {1: AsRole.ISP, 2: AsRole.CLOUD, 3: AsRole.CLOUD}


class TestPrefixAllocator:
    def test_blocks_are_distinct(self):
        allocator = PrefixAllocator()
        blocks = [allocator.allocate_ipv4() for _ in range(50)]
        assert len(set(blocks)) == 50
        assert all(block.endswith("/16") for block in blocks)

    def test_ipv6_blocks_are_distinct(self):
        allocator = PrefixAllocator()
        blocks = [allocator.allocate_ipv6() for _ in range(20)]
        assert len(set(blocks)) == 20
        assert all(block.endswith("/32") for block in blocks)

    def test_many_allocations_supported(self):
        allocator = PrefixAllocator()
        blocks = [allocator.allocate_ipv4() for _ in range(300)]
        assert len(set(blocks)) == 300


class TestInterfaceAddressPool:
    def test_draws_are_unique(self):
        pool = InterfaceAddressPool(["10.0.0.0/24"], random.Random(1))
        drawn = pool.draw(50) + pool.draw(50)
        assert len(set(drawn)) == 100
        assert pool.used_count == 100

    def test_empty_prefix_list_rejected(self):
        with pytest.raises(TopologyError):
            InterfaceAddressPool([], random.Random(1))

    def test_exhaustion_raises(self):
        pool = InterfaceAddressPool(["192.0.2.0/29"], random.Random(1))
        with pytest.raises(TopologyError):
            pool.draw(100)

    def test_ipv6_pool(self):
        pool = InterfaceAddressPool(["2001:db8:1::/48"], random.Random(2))
        drawn = pool.draw(30)
        assert len(set(drawn)) == 30
