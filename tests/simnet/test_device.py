"""Tests for the device/interface model."""

import pytest

from repro.errors import SimulationError
from repro.protocols.snmp.engine import SnmpEngineConfig
from repro.protocols.ssh.server import SshServerConfig
from repro.simnet.device import Device, DeviceRole, Interface, ServiceType


def make_device(**kwargs):
    defaults = dict(
        device_id="rtr-1",
        role=DeviceRole.CORE_ROUTER,
        home_asn=3320,
        interfaces=[
            Interface(name="ge-0/0/0", address="10.0.0.1", asn=3320),
            Interface(name="ge-0/0/1", address="10.0.0.2", asn=3320),
            Interface(name="v6-0", address="2001:db8::1", asn=3320),
        ],
    )
    defaults.update(kwargs)
    return Device(**defaults)


class TestAddresses:
    def test_family_split(self):
        device = make_device()
        assert device.ipv4_addresses() == ["10.0.0.1", "10.0.0.2"]
        assert device.ipv6_addresses() == ["2001:db8::1"]
        assert device.is_dual_stack

    def test_not_dual_stack_without_ipv6(self):
        device = make_device(interfaces=[Interface(name="e0", address="10.1.0.1", asn=1)])
        assert not device.is_dual_stack

    def test_interface_for(self):
        device = make_device()
        assert device.interface_for("10.0.0.2").name == "ge-0/0/1"
        with pytest.raises(SimulationError):
            device.interface_for("192.0.2.99")

    def test_asns(self):
        device = make_device(
            interfaces=[
                Interface(name="a", address="10.0.0.1", asn=3320),
                Interface(name="b", address="10.9.0.1", asn=701),
            ]
        )
        assert device.asns() == {3320, 701}

    def test_duplicate_interface_name_rejected(self):
        with pytest.raises(SimulationError):
            make_device(
                interfaces=[
                    Interface(name="e0", address="10.0.0.1", asn=1),
                    Interface(name="e0", address="10.0.0.2", asn=1),
                ]
            )

    def test_duplicate_address_rejected(self):
        with pytest.raises(SimulationError):
            make_device(
                interfaces=[
                    Interface(name="e0", address="10.0.0.1", asn=1),
                    Interface(name="e1", address="10.0.0.1", asn=1),
                ]
            )

    def test_add_interface_checks_uniqueness(self):
        device = make_device()
        device.add_interface(Interface(name="new0", address="10.0.0.9", asn=3320))
        assert "10.0.0.9" in device.addresses()
        with pytest.raises(SimulationError):
            device.add_interface(Interface(name="new0", address="10.0.0.10", asn=3320))


class TestServices:
    def test_no_services_by_default(self):
        device = make_device()
        assert device.services() == []
        assert not device.runs_service(ServiceType.SSH)
        assert device.service_addresses(ServiceType.SSH) == []

    def test_ssh_answers_on_all_addresses_without_acl(self):
        device = make_device(ssh_config=SshServerConfig.generate("rtr-1"))
        assert device.service_addresses(ServiceType.SSH) == device.addresses()
        assert device.answers_on(ServiceType.SSH, "10.0.0.1")

    def test_acl_restricts_service(self):
        device = make_device(
            ssh_config=SshServerConfig.generate("rtr-1"),
            service_acl={ServiceType.SSH: frozenset({"10.0.0.1"})},
        )
        assert device.service_addresses(ServiceType.SSH) == ["10.0.0.1"]
        assert not device.answers_on(ServiceType.SSH, "10.0.0.2")

    def test_acl_for_one_service_does_not_affect_other(self):
        device = make_device(
            ssh_config=SshServerConfig.generate("rtr-1"),
            snmp_config=SnmpEngineConfig.generate("rtr-1"),
            service_acl={ServiceType.SSH: frozenset({"10.0.0.1"})},
        )
        assert device.service_addresses(ServiceType.SNMPV3) == device.addresses()

    def test_services_lists_configured_services(self):
        device = make_device(
            ssh_config=SshServerConfig.generate("rtr-1"),
            snmp_config=SnmpEngineConfig.generate("rtr-1"),
        )
        assert set(device.services()) == {ServiceType.SSH, ServiceType.SNMPV3}
