"""Tests for repro.net.addresses."""

import random

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.net import addresses


class TestParsing:
    def test_parse_ipv4(self):
        assert str(addresses.parse_address("192.0.2.1")) == "192.0.2.1"

    def test_parse_ipv6(self):
        assert str(addresses.parse_address("2001:db8::1")) == "2001:db8::1"

    def test_parse_invalid_raises(self):
        with pytest.raises(ValueError):
            addresses.parse_address("not-an-address")

    def test_canonical_compresses_ipv6(self):
        assert addresses.canonical("2001:0db8:0000:0000:0000:0000:0000:0001") == "2001:db8::1"

    def test_canonical_ipv4_identity(self):
        assert addresses.canonical("198.51.100.7") == "198.51.100.7"


class TestFamily:
    def test_family_ipv4(self):
        assert addresses.family_of("10.0.0.1") is addresses.AddressFamily.IPV4

    def test_family_ipv6(self):
        assert addresses.family_of("::1") is addresses.AddressFamily.IPV6

    def test_is_ipv4(self):
        assert addresses.is_ipv4("10.0.0.1")
        assert not addresses.is_ipv4("::1")

    def test_is_ipv6(self):
        assert addresses.is_ipv6("fe80::1")
        assert not addresses.is_ipv6("10.0.0.1")


class TestPrefixAddresses:
    def test_small_ipv4_prefix_excludes_network_and_broadcast(self):
        hosts = list(addresses.prefix_addresses("192.0.2.0/30"))
        assert hosts == ["192.0.2.1", "192.0.2.2"]

    def test_limit_respected(self):
        hosts = list(addresses.prefix_addresses("10.0.0.0/8", limit=5))
        assert len(hosts) == 5

    def test_ipv6_prefix_limited(self):
        hosts = list(addresses.prefix_addresses("2001:db8::/64", limit=3))
        assert len(hosts) == 3
        assert all(addresses.is_ipv6(host) for host in hosts)


class TestRandomAddresses:
    def test_count_and_membership(self):
        rng = random.Random(7)
        chosen = addresses.random_addresses_in_prefix("203.0.113.0/24", 10, rng)
        assert len(chosen) == len(set(chosen)) == 10
        assert all(value.startswith("203.0.113.") for value in chosen)

    def test_deterministic_given_seed(self):
        first = addresses.random_addresses_in_prefix("203.0.113.0/24", 5, random.Random(1))
        second = addresses.random_addresses_in_prefix("203.0.113.0/24", 5, random.Random(1))
        assert first == second

    def test_dense_request_uses_every_host(self):
        rng = random.Random(3)
        chosen = addresses.random_addresses_in_prefix("192.0.2.0/29", 6, rng)
        assert len(chosen) == 6

    def test_over_capacity_raises(self):
        with pytest.raises(ValueError):
            addresses.random_addresses_in_prefix("192.0.2.0/30", 5, random.Random(0))

    def test_ipv6_sparse_sampling(self):
        rng = random.Random(11)
        chosen = addresses.random_addresses_in_prefix("2001:db8::/48", 20, rng)
        assert len(chosen) == len(set(chosen)) == 20
        assert all(addresses.is_ipv6(value) for value in chosen)


class TestSelectionHelpers:
    def test_addresses_in_any(self):
        pool = ["10.0.0.1", "10.1.0.1", "192.0.2.9", "2001:db8::5"]
        selected = addresses.addresses_in_any(pool, ["10.0.0.0/16", "2001:db8::/32"])
        assert selected == ["10.0.0.1", "2001:db8::5"]

    def test_sort_addresses_ipv4_before_ipv6(self):
        unsorted = ["2001:db8::1", "10.0.0.2", "10.0.0.1"]
        assert addresses.sort_addresses(unsorted) == ["10.0.0.1", "10.0.0.2", "2001:db8::1"]


@given(st.integers(min_value=0, max_value=2**32 - 1))
def test_canonical_roundtrip_ipv4(value):
    import ipaddress

    text = str(ipaddress.IPv4Address(value))
    assert addresses.canonical(text) == text
    assert addresses.is_ipv4(text)


@given(st.integers(min_value=0, max_value=2**128 - 1))
def test_family_detection_ipv6(value):
    import ipaddress

    text = str(ipaddress.IPv6Address(value))
    assert addresses.is_ipv6(text)
