"""Tests for the loopback connection and server behaviour plumbing."""

import pytest

from repro.net.endpoint import ConnectionClosed, LoopbackConnection, ServerBehavior


class GreeterBehavior(ServerBehavior):
    """Sends a greeting on connect and echoes client data back upper-cased."""

    def __init__(self, close_after_greeting=False):
        self._closed = close_after_greeting

    def on_connect(self):
        return b"HELLO\n"

    def on_data(self, data):
        return data.upper()

    @property
    def closed(self):
        return self._closed


class TestLoopbackConnection:
    def test_on_connect_bytes_are_buffered(self):
        connection = LoopbackConnection(GreeterBehavior())
        assert connection.receive() == b"HELLO\n"

    def test_receive_drains_buffer(self):
        connection = LoopbackConnection(GreeterBehavior())
        connection.receive()
        assert connection.receive() == b""

    def test_send_and_receive_roundtrip(self):
        connection = LoopbackConnection(GreeterBehavior())
        connection.receive()
        connection.send(b"ping")
        assert connection.receive() == b"PING"

    def test_send_after_close_raises(self):
        connection = LoopbackConnection(GreeterBehavior())
        connection.close()
        with pytest.raises(ConnectionClosed):
            connection.send(b"late")

    def test_receive_after_close_raises(self):
        connection = LoopbackConnection(GreeterBehavior())
        connection.close()
        with pytest.raises(ConnectionClosed):
            connection.receive()

    def test_peer_closed_reflects_behavior_and_buffer(self):
        connection = LoopbackConnection(GreeterBehavior(close_after_greeting=True))
        # Greeting still buffered: not peer_closed yet from the reader's view.
        assert not connection.peer_closed
        assert connection.receive() == b"HELLO\n"
        assert connection.peer_closed

    def test_send_to_closed_peer_is_dropped(self):
        connection = LoopbackConnection(GreeterBehavior(close_after_greeting=True))
        connection.receive()
        connection.send(b"anyone there?")
        assert connection.receive() == b""

    def test_default_server_behavior_is_silent(self):
        connection = LoopbackConnection(ServerBehavior())
        assert connection.receive() == b""
        connection.send(b"data")
        assert connection.receive() == b""
        assert not connection.peer_closed
