"""Tests for the simplified TCP handshake model."""

from repro.net.tcp import TcpFlags, TcpPolicy, TcpSegment, handshake_response


def syn(target="192.0.2.1", port=22):
    return TcpSegment(
        source="198.51.100.9",
        destination=target,
        sport=54321,
        dport=port,
        flags=TcpFlags.SYN,
        seq=1000,
    )


class TestHandshake:
    def test_accept_returns_synack(self):
        reply = handshake_response(syn(), TcpPolicy.ACCEPT)
        assert reply is not None
        assert TcpFlags.SYN in reply.flags and TcpFlags.ACK in reply.flags

    def test_synack_swaps_endpoints_and_acks_seq(self):
        probe = syn()
        reply = handshake_response(probe, TcpPolicy.ACCEPT)
        assert reply.source == probe.destination
        assert reply.destination == probe.source
        assert reply.sport == probe.dport
        assert reply.dport == probe.sport
        assert reply.ack == probe.seq + 1

    def test_reset_policy_returns_rst(self):
        reply = handshake_response(syn(), TcpPolicy.RESET)
        assert reply is not None
        assert TcpFlags.RST in reply.flags
        assert TcpFlags.SYN not in reply.flags

    def test_drop_policy_returns_none(self):
        assert handshake_response(syn(), TcpPolicy.DROP) is None

    def test_non_syn_segment_gets_no_reply(self):
        ack = TcpSegment(
            source="198.51.100.9",
            destination="192.0.2.1",
            sport=54321,
            dport=22,
            flags=TcpFlags.ACK,
        )
        assert handshake_response(ack, TcpPolicy.ACCEPT) is None

    def test_synack_is_not_treated_as_syn(self):
        synack = TcpSegment(
            source="192.0.2.1",
            destination="198.51.100.9",
            sport=22,
            dport=54321,
            flags=TcpFlags.SYN | TcpFlags.ACK,
        )
        assert not synack.is_syn
        assert handshake_response(synack, TcpPolicy.ACCEPT) is None
