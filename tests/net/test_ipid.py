"""Tests for IPID counter models."""

import random

from repro.net.ipid import (
    IPID_MODULUS,
    ConstantIpidCounter,
    HighVelocityIpidCounter,
    MonotonicIpidCounter,
    PerInterfaceIpidCounter,
    RandomIpidCounter,
)


def unwrapped_deltas(samples):
    """Differences between consecutive samples modulo the IPID space."""
    return [(b - a) % IPID_MODULUS for a, b in zip(samples, samples[1:], strict=False)]


class TestMonotonicCounter:
    def test_increments_between_samples(self):
        counter = MonotonicIpidCounter(start=100, velocity=0.0, jitter=0)
        samples = [counter.sample("a", float(t)) for t in range(10)]
        assert samples == list(range(101, 111))

    def test_shared_across_interfaces(self):
        counter = MonotonicIpidCounter(start=5, velocity=0.0, jitter=0)
        first = counter.sample("if0", 0.0)
        second = counter.sample("if1", 0.1)
        assert second == first + 1

    def test_velocity_adds_background_traffic(self):
        slow = MonotonicIpidCounter(start=0, velocity=0.0, jitter=0)
        fast = MonotonicIpidCounter(start=0, velocity=100.0, jitter=0)
        slow_samples = [slow.sample("a", float(t)) for t in range(1, 6)]
        fast_samples = [fast.sample("a", float(t)) for t in range(1, 6)]
        assert max(unwrapped_deltas(fast_samples)) > max(unwrapped_deltas(slow_samples))

    def test_wraps_modulo_65536(self):
        counter = MonotonicIpidCounter(start=IPID_MODULUS - 2, velocity=0.0, jitter=0)
        samples = [counter.sample("a", float(t)) for t in range(4)]
        assert all(0 <= value < IPID_MODULUS for value in samples)
        assert 0 in samples  # the wrap happened

    def test_time_never_goes_backwards_effect(self):
        counter = MonotonicIpidCounter(start=0, velocity=10.0, jitter=0)
        counter.sample("a", 100.0)
        # An out-of-order timestamp must not decrease the counter.
        later = counter.sample("a", 50.0)
        latest = counter.sample("a", 51.0)
        assert (latest - later) % IPID_MODULUS >= 1


class TestPerInterfaceCounter:
    def test_interfaces_have_independent_sequences(self):
        counter = PerInterfaceIpidCounter(velocity=0.0, rng=random.Random(1))
        a_samples = [counter.sample("a", float(t)) for t in range(5)]
        b_samples = [counter.sample("b", float(t)) for t in range(5)]
        # Each sequence is locally monotonic with small steps...
        assert all(0 < delta < 10 for delta in unwrapped_deltas(a_samples))
        assert all(0 < delta < 10 for delta in unwrapped_deltas(b_samples))
        # ...but the two sequences start from unrelated offsets.
        assert abs(a_samples[0] - b_samples[0]) > 10

    def test_not_shared_flag(self):
        assert PerInterfaceIpidCounter.shared_across_interfaces is False


class TestOtherCounters:
    def test_random_counter_not_monotonic_flag(self):
        assert RandomIpidCounter.monotonic is False

    def test_random_counter_range(self):
        counter = RandomIpidCounter(rng=random.Random(2))
        samples = [counter.sample("a", float(t)) for t in range(100)]
        assert all(0 <= value < IPID_MODULUS for value in samples)
        assert len(set(samples)) > 50  # overwhelmingly distinct

    def test_constant_counter(self):
        counter = ConstantIpidCounter(value=0)
        assert [counter.sample("a", float(t)) for t in range(5)] == [0] * 5

    def test_high_velocity_counter_wraps_between_samples(self):
        counter = HighVelocityIpidCounter(start=0, rng=random.Random(3))
        # One second apart at ~250k increments/second wraps several times.
        first = counter.sample("a", 1.0)
        second = counter.sample("a", 2.0)
        assert 0 <= first < IPID_MODULUS and 0 <= second < IPID_MODULUS
