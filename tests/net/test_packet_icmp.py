"""Tests for packet and ICMP models."""

from repro.net.icmp import IcmpMessage, IcmpType
from repro.net.packet import ProbePacket, ProbeType, ResponsePacket, ResponseType


class TestPackets:
    def test_response_responded_flag(self):
        probe = ProbePacket(target="192.0.2.1", probe_type=ProbeType.TCP_SYN, dport=22)
        hit = ResponsePacket(probe=probe, response_type=ResponseType.TCP_SYNACK, source="192.0.2.1")
        miss = ResponsePacket(probe=probe, response_type=ResponseType.NO_RESPONSE)
        assert hit.responded
        assert not miss.responded

    def test_probe_defaults(self):
        probe = ProbePacket(target="2001:db8::1", probe_type=ProbeType.ICMP_ECHO)
        assert probe.dport == 0
        assert probe.timestamp == 0.0


class TestIcmp:
    def test_port_unreachable_detection(self):
        message = IcmpMessage(
            icmp_type=IcmpType.DEST_UNREACHABLE,
            code=3,
            source="192.0.2.254",
            quoted_destination="192.0.2.1",
        )
        assert message.is_port_unreachable

    def test_other_unreachable_codes_are_not_port_unreachable(self):
        message = IcmpMessage(icmp_type=IcmpType.DEST_UNREACHABLE, code=1, source="192.0.2.254")
        assert not message.is_port_unreachable

    def test_echo_reply_is_not_port_unreachable(self):
        message = IcmpMessage(icmp_type=IcmpType.ECHO_REPLY, code=0, source="192.0.2.1")
        assert not message.is_port_unreachable
