"""Property tests: dataset and alias-set serialisation is an exact round-trip.

``load(save(dataset)) == dataset`` over hypothesis-generated observations —
all protocols, arbitrary ports, unicode field values, present and absent
ASNs and timestamps — and the same for alias-set documents.  This is the
byte-faithfulness contract the persistence subsystem (:mod:`repro.persist`)
builds on: a restored session may only produce byte-identical reports if
the observations underneath round-trip exactly.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.aliasset import AliasSet, AliasSetCollection
from repro.io.datasets import (
    load_alias_sets,
    load_observations,
    observation_from_dict,
    observation_to_dict,
    save_alias_sets,
    save_observations,
)
from repro.simnet.device import ServiceType
from repro.sources.records import Observation, ObservationDataset

_ADDRESSES = [f"10.{i}.0.1" for i in range(8)] + [f"2001:db8::{i:x}" for i in range(1, 5)]

#: Unicode-heavy but newline-free text (JSONL records are one line each;
#: json.dumps escapes everything anyway, so this exercises the worst case).
_FIELD_TEXT = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=0, max_size=20
)

_NAMES = st.text(
    alphabet=st.characters(blacklist_categories=("Cs",)), min_size=1, max_size=12
)


@st.composite
def _observation(draw):
    fields = draw(
        st.dictionaries(keys=_FIELD_TEXT.filter(bool), values=_FIELD_TEXT, max_size=4)
    )
    return Observation(
        address=draw(st.sampled_from(_ADDRESSES)),
        protocol=draw(st.sampled_from(list(ServiceType))),
        source=draw(st.sampled_from(["active", "censys", "архив", "扫描"])),
        port=draw(st.integers(min_value=1, max_value=65535)),
        timestamp=draw(
            st.floats(min_value=0.0, max_value=1e9, allow_nan=False, allow_infinity=False)
        ),
        asn=draw(st.one_of(st.none(), st.integers(min_value=1, max_value=4_294_967_295))),
        fields=tuple(sorted(fields.items())),
    )


@st.composite
def _alias_collection(draw):
    sets = draw(
        st.lists(
            st.builds(
                AliasSet,
                identifier=_NAMES,
                addresses=st.frozensets(st.sampled_from(_ADDRESSES), min_size=1, max_size=5),
                protocols=st.frozensets(st.sampled_from(list(ServiceType)), min_size=1),
            ),
            max_size=6,
        )
    )
    address_asn = draw(
        st.dictionaries(
            keys=st.sampled_from(_ADDRESSES),
            values=st.integers(min_value=1, max_value=65535),
            max_size=6,
        )
    )
    return AliasSetCollection(draw(_NAMES), sets=sets, address_asn=address_asn)


class TestObservationRoundTripProperties:
    @given(observation=_observation())
    @settings(max_examples=200, deadline=None)
    def test_dict_roundtrip_identity(self, observation):
        assert observation_from_dict(observation_to_dict(observation)) == observation

    @given(
        observations=st.lists(_observation(), max_size=20),
        name=_NAMES,
    )
    @settings(max_examples=50, deadline=None)
    def test_file_roundtrip_identity(self, tmp_path_factory, observations, name):
        dataset = ObservationDataset(name, observations)
        path = tmp_path_factory.mktemp("roundtrip") / "dataset.jsonl"
        count = save_observations(dataset, path)
        assert count == len(observations)
        loaded = load_observations(path)
        assert loaded.name == dataset.name
        assert list(loaded) == list(dataset)

    @given(observations=st.lists(_observation(), max_size=10))
    @settings(max_examples=25, deadline=None)
    def test_double_roundtrip_is_stable(self, tmp_path_factory, observations):
        # load(save(load(save(ds)))) == load(save(ds)): no lossy coercion on
        # either side of the trip.
        dataset = ObservationDataset("ds", observations)
        base = tmp_path_factory.mktemp("stable")
        save_observations(dataset, base / "one.jsonl")
        once = load_observations(base / "one.jsonl")
        save_observations(once, base / "two.jsonl")
        twice = load_observations(base / "two.jsonl")
        assert list(twice) == list(once) == list(dataset)


class TestAliasSetRoundTripProperties:
    @given(collection=_alias_collection())
    @settings(max_examples=50, deadline=None)
    def test_document_roundtrip(self, tmp_path_factory, collection):
        path = tmp_path_factory.mktemp("alias") / "sets.json"
        save_alias_sets(collection, path)
        loaded = load_alias_sets(path)
        assert loaded.name == collection.name
        assert loaded.address_asn == collection.address_asn
        assert sorted(
            (s.identifier, s.addresses, s.protocols) for s in loaded
        ) == sorted((s.identifier, s.addresses, s.protocols) for s in collection)
