"""Tests for JSONL helpers and dataset persistence."""

import pytest

from repro.core.aliasset import AliasSet, AliasSetCollection
from repro.errors import DatasetError
from repro.io.datasets import (
    load_alias_sets,
    load_observations,
    observation_from_dict,
    observation_to_dict,
    save_alias_sets,
    save_observations,
)
from repro.io.jsonl import read_jsonl, write_jsonl
from repro.simnet.device import ServiceType
from repro.sources.records import Observation, ObservationDataset


def sample_observation(address="10.0.0.1"):
    return Observation(
        address=address,
        protocol=ServiceType.SSH,
        source="active",
        port=22,
        timestamp=12.5,
        asn=14061,
        fields=(("banner", "SSH-2.0-OpenSSH_9.3"), ("host_key_fingerprint", "SHA256:abc")),
    )


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "records.jsonl"
        count = write_jsonl(path, [{"a": 1}, {"b": [1, 2]}])
        assert count == 2
        assert list(read_jsonl(path)) == [{"a": 1}, {"b": [1, 2]}]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            list(read_jsonl(tmp_path / "absent.jsonl"))

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(DatasetError):
            list(read_jsonl(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert len(list(read_jsonl(path))) == 2


class TestObservationSerialisation:
    def test_dict_roundtrip(self):
        observation = sample_observation()
        assert observation_from_dict(observation_to_dict(observation)) == observation

    def test_malformed_record_raises(self):
        with pytest.raises(DatasetError):
            observation_from_dict({"address": "10.0.0.1"})

    def test_dataset_roundtrip(self, tmp_path):
        dataset = ObservationDataset("active", [sample_observation(), sample_observation("10.0.0.2")])
        path = tmp_path / "obs.jsonl"
        assert save_observations(dataset, path) == 2
        loaded = load_observations(path, name="active")
        assert len(loaded) == 2
        assert loaded.addresses() == {"10.0.0.1", "10.0.0.2"}
        assert list(loaded)[0].field("banner") == "SSH-2.0-OpenSSH_9.3"


class TestAliasSetSerialisation:
    def test_roundtrip(self, tmp_path):
        collection = AliasSetCollection(
            "ssh",
            [
                AliasSet("id-1", frozenset({"10.0.0.1", "10.0.0.2"}), frozenset({ServiceType.SSH})),
                AliasSet("id-2", frozenset({"10.1.0.1"}), frozenset({ServiceType.SSH, ServiceType.BGP})),
            ],
            address_asn={"10.0.0.1": 1, "10.0.0.2": 1, "10.1.0.1": 2},
        )
        path = tmp_path / "sets.json"
        save_alias_sets(collection, path)
        loaded = load_alias_sets(path)
        assert loaded.name == "ssh"
        assert len(loaded) == 2
        assert loaded.asn_of("10.1.0.1") == 2
        two_set = next(s for s in loaded if s.size == 2)
        assert two_set.addresses == frozenset({"10.0.0.1", "10.0.0.2"})

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_alias_sets(tmp_path / "absent.json")

    def test_malformed_document_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(DatasetError):
            load_alias_sets(path)
