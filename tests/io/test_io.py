"""Tests for JSONL helpers and dataset persistence."""

import pytest

from repro.core.aliasset import AliasSet, AliasSetCollection
from repro.errors import DatasetError
from repro.io.datasets import (
    DATASET_HEADER_KEY,
    load_alias_sets,
    load_observations,
    observation_from_dict,
    observation_to_dict,
    save_alias_sets,
    save_observations,
)
from repro.io.jsonl import read_jsonl, write_jsonl
from repro.simnet.device import ServiceType
from repro.sources.records import Observation, ObservationDataset


def sample_observation(address="10.0.0.1"):
    return Observation(
        address=address,
        protocol=ServiceType.SSH,
        source="active",
        port=22,
        timestamp=12.5,
        asn=14061,
        fields=(("banner", "SSH-2.0-OpenSSH_9.3"), ("host_key_fingerprint", "SHA256:abc")),
    )


class TestJsonl:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "records.jsonl"
        count = write_jsonl(path, [{"a": 1}, {"b": [1, 2]}])
        assert count == 2
        assert list(read_jsonl(path)) == [{"a": 1}, {"b": [1, 2]}]

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            list(read_jsonl(tmp_path / "absent.jsonl"))

    def test_invalid_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"ok": 1}\nnot json\n')
        with pytest.raises(DatasetError):
            list(read_jsonl(path))

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "blank.jsonl"
        path.write_text('{"a": 1}\n\n{"b": 2}\n')
        assert len(list(read_jsonl(path))) == 2


class TestObservationSerialisation:
    def test_dict_roundtrip(self):
        observation = sample_observation()
        assert observation_from_dict(observation_to_dict(observation)) == observation

    def test_malformed_record_raises(self):
        with pytest.raises(DatasetError):
            observation_from_dict({"address": "10.0.0.1"})

    def test_string_asn_coerced_to_int(self):
        record = observation_to_dict(sample_observation())
        record["asn"] = "64512"
        loaded = observation_from_dict(record)
        assert loaded.asn == 64512
        assert isinstance(loaded.asn, int)

    def test_none_asn_preserved(self):
        record = observation_to_dict(sample_observation())
        record["asn"] = None
        assert observation_from_dict(record).asn is None

    @pytest.mark.parametrize("bad_asn", ["not-a-number", 1.5, 64512.0, True, [64512]])
    def test_malformed_asn_raises(self, bad_asn):
        record = observation_to_dict(sample_observation())
        record["asn"] = bad_asn
        with pytest.raises(DatasetError):
            observation_from_dict(record)

    @pytest.mark.parametrize("bad_port", [22.0, "twenty-two", None, False])
    def test_malformed_port_raises(self, bad_port):
        record = observation_to_dict(sample_observation())
        record["port"] = bad_port
        with pytest.raises(DatasetError):
            observation_from_dict(record)

    def test_non_string_field_value_raises(self):
        record = observation_to_dict(sample_observation())
        record["fields"] = {"hold_time": 180}
        with pytest.raises(DatasetError):
            observation_from_dict(record)

    def test_non_dict_fields_raises(self):
        record = observation_to_dict(sample_observation())
        record["fields"] = [["banner", "SSH-2.0"]]
        with pytest.raises(DatasetError):
            observation_from_dict(record)

    @pytest.mark.parametrize("bad_record", [5, "text", [1, 2], None])
    def test_non_object_record_raises(self, bad_record):
        with pytest.raises(DatasetError):
            observation_from_dict(bad_record)

    @pytest.mark.parametrize("bad_line", ["5", '"text"', "[1, 2]"])
    def test_non_object_line_raises_dataset_error(self, tmp_path, bad_line):
        import json

        path = tmp_path / "bad.jsonl"
        path.write_text(
            bad_line + "\n" + json.dumps(observation_to_dict(sample_observation())) + "\n"
        )
        with pytest.raises(DatasetError):
            load_observations(path)

    def test_exact_roundtrip_identity(self):
        observation = sample_observation()
        loaded = observation_from_dict(observation_to_dict(observation))
        assert loaded == observation
        assert observation_to_dict(loaded) == observation_to_dict(observation)

    def test_dataset_roundtrip(self, tmp_path):
        dataset = ObservationDataset("active", [sample_observation(), sample_observation("10.0.0.2")])
        path = tmp_path / "obs.jsonl"
        assert save_observations(dataset, path) == 2
        loaded = load_observations(path, name="active")
        assert len(loaded) == 2
        assert loaded.addresses() == {"10.0.0.1", "10.0.0.2"}
        assert list(loaded)[0].field("banner") == "SSH-2.0-OpenSSH_9.3"


class TestDatasetHeader:
    def test_renamed_file_keeps_dataset_name(self, tmp_path):
        dataset = ObservationDataset("active", [sample_observation()])
        path = tmp_path / "obs.jsonl"
        save_observations(dataset, path)
        renamed = tmp_path / "copy-for-archive.jsonl"
        renamed.write_bytes(path.read_bytes())
        assert load_observations(renamed).name == "active"

    def test_explicit_name_overrides_header(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        save_observations(ObservationDataset("active", [sample_observation()]), path)
        assert load_observations(path, name="renamed").name == "renamed"

    def test_headerless_file_falls_back_to_stem(self, tmp_path):
        import json

        path = tmp_path / "legacy.jsonl"
        path.write_text(json.dumps(observation_to_dict(sample_observation())) + "\n")
        loaded = load_observations(path)
        assert loaded.name == "legacy"
        assert len(loaded) == 1

    def test_header_not_counted_as_observation(self, tmp_path):
        path = tmp_path / "obs.jsonl"
        count = save_observations(ObservationDataset("active", [sample_observation()]), path)
        assert count == 1
        assert len(load_observations(path)) == 1

    def test_unsupported_version_raises(self, tmp_path):
        import json

        path = tmp_path / "future.jsonl"
        path.write_text(json.dumps({DATASET_HEADER_KEY: 999, "name": "x"}) + "\n")
        with pytest.raises(DatasetError):
            load_observations(path)

    def test_nameless_header_raises(self, tmp_path):
        import json

        path = tmp_path / "broken.jsonl"
        path.write_text(json.dumps({DATASET_HEADER_KEY: 1}) + "\n")
        with pytest.raises(DatasetError):
            load_observations(path)

    def test_save_creates_parent_directories(self, tmp_path):
        # Symmetric with save_alias_sets: both save paths mkdir(parents=True).
        path = tmp_path / "deeply" / "nested" / "obs.jsonl"
        assert save_observations(ObservationDataset("active", [sample_observation()]), path) == 1
        assert load_observations(path).name == "active"


class TestAliasSetSerialisation:
    def test_roundtrip(self, tmp_path):
        collection = AliasSetCollection(
            "ssh",
            [
                AliasSet("id-1", frozenset({"10.0.0.1", "10.0.0.2"}), frozenset({ServiceType.SSH})),
                AliasSet("id-2", frozenset({"10.1.0.1"}), frozenset({ServiceType.SSH, ServiceType.BGP})),
            ],
            address_asn={"10.0.0.1": 1, "10.0.0.2": 1, "10.1.0.1": 2},
        )
        path = tmp_path / "sets.json"
        save_alias_sets(collection, path)
        loaded = load_alias_sets(path)
        assert loaded.name == "ssh"
        assert len(loaded) == 2
        assert loaded.asn_of("10.1.0.1") == 2
        two_set = next(s for s in loaded if s.size == 2)
        assert two_set.addresses == frozenset({"10.0.0.1", "10.0.0.2"})

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(DatasetError):
            load_alias_sets(tmp_path / "absent.json")

    def test_malformed_document_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{}")
        with pytest.raises(DatasetError):
            load_alias_sets(path)

    def test_save_creates_parent_directories(self, tmp_path):
        collection = AliasSetCollection(
            "ssh", [AliasSet("id-1", frozenset({"10.0.0.1"}), frozenset({ServiceType.SSH}))]
        )
        path = tmp_path / "deeply" / "nested" / "sets.json"
        save_alias_sets(collection, path)
        assert load_alias_sets(path).name == "ssh"
