"""Tests for the IPID time-series primitives and the monotonic bounds test."""

from repro.baselines.ipid import IpidTimeSeries, TargetClass, classify_series, shared_counter_test


def series_from(values, interval=1.0):
    series = IpidTimeSeries(address="10.0.0.1")
    for index, value in enumerate(values):
        series.add(index * interval, value)
    return series


class TestTimeSeries:
    def test_none_samples_skipped(self):
        series = IpidTimeSeries(address="10.0.0.1")
        series.add(0.0, 10)
        series.add(1.0, None)
        series.add(2.0, 12)
        assert series.response_count == 2

    def test_velocity_simple(self):
        series = series_from([100, 110, 120, 130])
        assert series.velocity() == 10.0

    def test_velocity_with_wrap(self):
        series = series_from([65530, 4, 14])
        assert series.velocity() == 10.0

    def test_velocity_needs_two_samples(self):
        assert series_from([5]).velocity() is None


class TestSharedCounterTest:
    def test_accepts_interleaved_shared_counter(self):
        merged = [(0.0, 100), (0.5, 103), (1.0, 105), (1.5, 109), (2.0, 111)]
        assert shared_counter_test(merged, max_velocity=50.0)

    def test_rejects_unrelated_offsets(self):
        # Two counters ~30000 apart: the interleaving produces a huge jump.
        merged = [(0.0, 100), (0.5, 30100), (1.0, 105), (1.5, 30110)]
        assert not shared_counter_test(merged, max_velocity=50.0)

    def test_accepts_wrap_of_shared_counter(self):
        merged = [(0.0, 65530), (1.0, 2), (2.0, 8)]
        assert shared_counter_test(merged, max_velocity=50.0)

    def test_velocity_bound_enforced(self):
        merged = [(0.0, 0), (1.0, 5000)]
        assert not shared_counter_test(merged, max_velocity=100.0)
        assert shared_counter_test(merged, max_velocity=10_000.0)

    def test_unsorted_input_is_sorted_by_time(self):
        merged = [(1.0, 105), (0.0, 100), (2.0, 111)]
        assert shared_counter_test(merged, max_velocity=50.0)


class TestClassification:
    def test_monotonic_counter_usable(self):
        assert classify_series(series_from([10, 14, 19, 25, 30])) is TargetClass.USABLE

    def test_too_few_responses_unresponsive(self):
        assert classify_series(series_from([10, 14])) is TargetClass.UNRESPONSIVE

    def test_random_ipids_non_monotonic(self):
        assert classify_series(series_from([40000, 200, 61234, 9, 30500])) is TargetClass.NON_MONOTONIC

    def test_constant_ipid_non_monotonic(self):
        assert classify_series(series_from([0, 0, 0, 0, 0])) is TargetClass.NON_MONOTONIC

    def test_high_velocity_too_fast(self):
        # Steps just inside the per-sample bound but above the velocity cap.
        values = [(i * 2050) % 65536 for i in range(6)]
        assert classify_series(series_from(values), max_velocity=2000.0) is TargetClass.TOO_FAST

    def test_wrapping_high_velocity_counter_is_unusable(self):
        # A counter wrapping several times between samples fails the bounds test.
        values = [(i * 30_000) % 65536 for i in range(6)]
        assert classify_series(series_from(values), max_velocity=2000.0) in (
            TargetClass.NON_MONOTONIC,
            TargetClass.TOO_FAST,
        )
