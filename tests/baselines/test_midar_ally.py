"""Tests for the MIDAR pipeline, Ally, and Speedtrap on controlled devices."""


import random

from repro.baselines.ally import AllyProber
from repro.baselines.ipid import TargetClass
from repro.baselines.midar import MidarProber
from repro.baselines.speedtrap import SpeedtrapProber
from repro.net.ipid import (
    ConstantIpidCounter,
    MonotonicIpidCounter,
    PerInterfaceIpidCounter,
    RandomIpidCounter,
)
from repro.simnet.asn import AsRegistry, AsRole, AutonomousSystem
from repro.simnet.churn import ChurnEvent, ChurnModel
from repro.simnet.device import Device, DeviceRole, Interface
from repro.simnet.network import SimulatedInternet, VantagePoint


def build_network(churn=None):
    registry = AsRegistry()
    registry.add(AutonomousSystem(asn=100, name="ISP", role=AsRole.ISP))
    devices = [
        # Shared monotonic counter: the MIDAR-friendly router.
        Device(
            device_id="shared",
            role=DeviceRole.CORE_ROUTER,
            home_asn=100,
            interfaces=[
                Interface(name="a", address="10.0.1.1", asn=100),
                Interface(name="b", address="10.0.1.2", asn=100),
                Interface(name="c", address="10.0.1.3", asn=100),
                Interface(name="v6a", address="2001:db80::11", asn=100),
                Interface(name="v6b", address="2001:db80::12", asn=100),
            ],
            ipid_counter=MonotonicIpidCounter(start=1000, velocity=5.0, jitter=0),
        ),
        # Second shared-counter router with a distant offset (not aliases of the first).
        Device(
            device_id="shared-2",
            role=DeviceRole.CORE_ROUTER,
            home_asn=100,
            interfaces=[
                Interface(name="a", address="10.0.2.1", asn=100),
                Interface(name="b", address="10.0.2.2", asn=100),
            ],
            ipid_counter=MonotonicIpidCounter(start=40000, velocity=5.0, jitter=0),
        ),
        # Per-interface counters: aliases invisible to IPID techniques.
        Device(
            device_id="per-interface",
            role=DeviceRole.CORE_ROUTER,
            home_asn=100,
            interfaces=[
                Interface(name="a", address="10.0.3.1", asn=100),
                Interface(name="b", address="10.0.3.2", asn=100),
            ],
            ipid_counter=PerInterfaceIpidCounter(velocity=5.0, rng=random.Random(99)),
        ),
        # Random IPIDs: untestable.
        Device(
            device_id="random",
            role=DeviceRole.SERVER,
            home_asn=100,
            interfaces=[
                Interface(name="a", address="10.0.4.1", asn=100),
                Interface(name="b", address="10.0.4.2", asn=100),
            ],
            ipid_counter=RandomIpidCounter(rng=random.Random(4)),
        ),
        # Constant zero IPIDs: untestable.
        Device(
            device_id="constant",
            role=DeviceRole.SERVER,
            home_asn=100,
            interfaces=[
                Interface(name="a", address="10.0.5.1", asn=100),
                Interface(name="b", address="10.0.5.2", asn=100),
            ],
            ipid_counter=ConstantIpidCounter(value=0),
        ),
    ]
    return SimulatedInternet(registry=registry, devices=devices, churn=churn, seed=1, loss_rate=0.0)


VP = VantagePoint(name="midar-test")


class TestMidar:
    def test_confirms_true_alias_set(self):
        prober = MidarProber(build_network(), VP)
        verdict = prober.verify_set(["10.0.1.1", "10.0.1.2", "10.0.1.3"])
        assert verdict.testable
        assert verdict.agrees
        assert verdict.partition == [frozenset({"10.0.1.1", "10.0.1.2", "10.0.1.3"})]

    def test_splits_false_alias_set(self):
        prober = MidarProber(build_network(), VP)
        verdict = prober.verify_set(["10.0.1.1", "10.0.2.1"])
        assert verdict.testable
        assert not verdict.agrees
        assert len(verdict.partition) == 2

    def test_per_interface_counters_not_confirmed(self):
        prober = MidarProber(build_network(), VP)
        verdict = prober.verify_set(["10.0.3.1", "10.0.3.2"])
        # Each interface is individually usable, but corroboration fails.
        assert verdict.testable
        assert not verdict.agrees

    def test_random_ipid_set_untestable(self):
        prober = MidarProber(build_network(), VP)
        verdict = prober.verify_set(["10.0.4.1", "10.0.4.2"])
        assert not verdict.testable
        assert verdict.target_classes["10.0.4.1"] is TargetClass.NON_MONOTONIC

    def test_constant_ipid_set_untestable(self):
        prober = MidarProber(build_network(), VP)
        verdict = prober.verify_set(["10.0.5.1", "10.0.5.2"])
        assert not verdict.testable

    def test_unknown_address_unresponsive(self):
        prober = MidarProber(build_network(), VP)
        verdict = prober.verify_set(["10.0.1.1", "198.18.0.1"])
        assert verdict.target_classes["198.18.0.1"] is TargetClass.UNRESPONSIVE
        assert not verdict.testable

    def test_verify_sets_advances_time(self):
        prober = MidarProber(build_network(), VP)
        verdicts = prober.verify_sets([["10.0.1.1", "10.0.1.2"], ["10.0.2.1", "10.0.2.2"]])
        assert verdicts[1].started_at >= verdicts[0].finished_at
        assert all(verdict.agrees for verdict in verdicts)

    def test_churn_during_long_run_splits_sets(self):
        # The address moves to a different device before the MIDAR run starts.
        churn = ChurnModel([ChurnEvent(address="10.0.1.2", switch_time=10.0, new_device_id="shared-2")])
        prober = MidarProber(build_network(churn=churn), VP)
        verdict = prober.verify_set(["10.0.1.1", "10.0.1.2"], start_time=100.0)
        assert verdict.testable
        assert not verdict.agrees

    def test_max_set_size_truncation(self):
        prober = MidarProber(build_network(), VP)
        members = [f"10.9.0.{i}" for i in range(1, 20)]
        verdict = prober.verify_set(members)
        assert len(verdict.candidate) == prober.config.max_set_size


class TestAlly:
    def test_true_pair_detected(self):
        prober = AllyProber(build_network(), VP)
        verdict = prober.test_pair("10.0.1.1", "10.0.1.2")
        assert verdict.responded
        assert verdict.aliases

    def test_false_pair_rejected(self):
        prober = AllyProber(build_network(), VP)
        verdict = prober.test_pair("10.0.1.1", "10.0.2.1")
        assert verdict.responded
        assert not verdict.aliases

    def test_unresponsive_pair(self):
        prober = AllyProber(build_network(), VP)
        verdict = prober.test_pair("198.18.0.1", "198.18.0.2")
        assert not verdict.responded

    def test_resolve_groups_addresses(self):
        prober = AllyProber(build_network(), VP)
        sets = prober.resolve(["10.0.1.1", "10.0.1.2", "10.0.2.1", "10.0.2.2"])
        assert frozenset({"10.0.1.1", "10.0.1.2"}) in sets
        assert frozenset({"10.0.2.1", "10.0.2.2"}) in sets


class TestSpeedtrap:
    def test_ipv6_alias_set_confirmed(self):
        prober = SpeedtrapProber(build_network())
        verdict = prober.verify_set(["2001:db80::11", "2001:db80::12"])
        assert verdict.testable
        assert verdict.agrees

    def test_ipv4_members_ignored(self):
        prober = SpeedtrapProber(build_network())
        verdict = prober.verify_set(["10.0.1.1", "2001:db80::11", "2001:db80::12"])
        assert "10.0.1.1" not in verdict.candidate
