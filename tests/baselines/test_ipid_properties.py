"""Hypothesis property tests for the monotonic bounds test.

Three invariants of :func:`repro.baselines.ipid.shared_counter_test`:

* the verdict does not depend on the input order (the test sorts by time
  internally);
* a sequence actually produced by one bounded-velocity counter always
  passes under that counter's own velocity bound;
* two independent uniformly random counters almost surely fail — the pass
  probability of a single boundary is ``(v·dt + slack) / 65536``, so over
  dozens of boundaries a pass is astronomically unlikely.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines.ipid import IPID_MODULUS, shared_counter_test

#: A plausible merged sample: strictly increasing times, arbitrary values.
samples = st.lists(
    st.tuples(
        st.floats(min_value=0.0, max_value=1e6, allow_nan=False, allow_infinity=False),
        st.integers(min_value=0, max_value=IPID_MODULUS - 1),
    ),
    min_size=2,
    max_size=40,
    unique_by=lambda sample: sample[0],
)


@given(merged=samples, order_seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=200)
def test_verdict_invariant_under_input_order(merged, order_seed):
    """Shuffling the merged sequence never changes the verdict."""
    shuffled = list(merged)
    random.Random(order_seed).shuffle(shuffled)
    assert shared_counter_test(shuffled, max_velocity=2_000.0) == shared_counter_test(
        merged, max_velocity=2_000.0
    )


@given(
    start=st.integers(min_value=0, max_value=IPID_MODULUS - 1),
    velocity=st.floats(min_value=0.1, max_value=2_000.0, allow_nan=False),
    gaps=st.lists(st.floats(min_value=0.01, max_value=30.0, allow_nan=False), min_size=1, max_size=30),
    fractions=st.lists(st.floats(min_value=0.0, max_value=1.0, allow_nan=False), min_size=30, max_size=30),
)
@settings(max_examples=200)
def test_single_bounded_counter_always_passes(start, velocity, gaps, fractions):
    """Samples drawn from one counter at ≤ its velocity pass its own bound."""
    now = 0.0
    value = start
    merged = [(now, value)]
    for gap, fraction in zip(gaps, fractions, strict=False):
        now += gap
        # The counter advanced at most velocity * gap increments.
        value = (value + int(velocity * gap * fraction)) % IPID_MODULUS
        merged.append((now, value))
    assert shared_counter_test(merged, max_velocity=velocity)


@given(seed=st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=100)
def test_two_independent_random_counters_fail(seed):
    """Interleaved uniform-random counters violate the bound somewhere.

    With 20 interleaved samples per side at 0.5 s spacing and a 100/s bound,
    each of the 39 consecutive deltas passes with probability ≈ (50 + 64) /
    65536 ≈ 0.0017 — all of them passing is beyond astronomically unlikely,
    so the assertion is deterministic in practice for every seed.
    """
    rng = random.Random(seed)
    merged = []
    now = 0.0
    for _ in range(20):
        for _ in range(2):  # one sample from each "counter"
            merged.append((now, rng.randrange(IPID_MODULUS)))
            now += 0.5
    assert not shared_counter_test(merged, max_velocity=100.0)
