"""Tests for the iffinder and DNS-PTR baselines."""

from repro.baselines.iffinder import IffinderProber
from repro.baselines.ptr import PtrResolver, ptr_dual_stack_sets
from repro.simnet.asn import AsRegistry, AsRole, AutonomousSystem
from repro.simnet.device import Device, DeviceRole, Interface
from repro.simnet.icmp_policy import IcmpUnreachablePolicy
from repro.simnet.network import SimulatedInternet, VantagePoint

VP = VantagePoint(name="baseline-test")


def build_network():
    registry = AsRegistry()
    registry.add(AutonomousSystem(asn=100, name="ISP", role=AsRole.ISP))
    devices = [
        Device(
            device_id="primary-responder",
            role=DeviceRole.CORE_ROUTER,
            home_asn=100,
            interfaces=[
                Interface(name="a", address="10.0.1.1", asn=100),
                Interface(name="b", address="10.0.1.2", asn=100),
                Interface(name="v6", address="2001:db80::1", asn=100),
            ],
            icmp_unreachable_policy=IcmpUnreachablePolicy.FROM_PRIMARY,
            hostname="core1.isp.example.net",
        ),
        Device(
            device_id="probed-responder",
            role=DeviceRole.CORE_ROUTER,
            home_asn=100,
            interfaces=[
                Interface(name="a", address="10.0.2.1", asn=100),
                Interface(name="b", address="10.0.2.2", asn=100),
            ],
            icmp_unreachable_policy=IcmpUnreachablePolicy.FROM_PROBED,
            hostname="core2.isp.example.net",
        ),
        Device(
            device_id="silent",
            role=DeviceRole.SERVER,
            home_asn=100,
            interfaces=[
                Interface(name="a", address="10.0.3.1", asn=100),
                Interface(name="v6", address="2001:db80::3", asn=100),
            ],
            icmp_unreachable_policy=IcmpUnreachablePolicy.SILENT,
            hostname="host3.isp.example.net",
        ),
    ]
    return SimulatedInternet(registry=registry, devices=devices, seed=2, loss_rate=0.0)


class TestIffinder:
    def test_reveals_aliases_for_primary_responders(self):
        prober = IffinderProber(build_network(), VP)
        observation = prober.probe("10.0.1.2")
        assert observation.reveals_alias
        assert observation.icmp_source == "10.0.1.1"

    def test_probed_address_responders_reveal_nothing(self):
        prober = IffinderProber(build_network(), VP)
        observation = prober.probe("10.0.2.2")
        assert not observation.reveals_alias

    def test_silent_devices_reveal_nothing(self):
        prober = IffinderProber(build_network(), VP)
        observation = prober.probe("10.0.3.1")
        assert observation.icmp_source is None

    def test_resolve_groups_only_revealed_aliases(self):
        prober = IffinderProber(build_network(), VP)
        sets = prober.resolve(["10.0.1.1", "10.0.1.2", "10.0.2.1", "10.0.2.2", "10.0.3.1"])
        assert frozenset({"10.0.1.1", "10.0.1.2"}) in sets
        # The probed-address responder's interfaces stay separate.
        assert frozenset({"10.0.2.1"}) in sets
        assert frozenset({"10.0.2.2"}) in sets

    def test_observations_returns_per_address_detail(self):
        prober = IffinderProber(build_network(), VP)
        observations = prober.observations(["10.0.1.2", "10.0.3.1"])
        assert len(observations) == 2
        assert observations[0].reveals_alias
        assert not observations[1].reveals_alias


class TestPtr:
    def test_full_coverage_pairs_families(self):
        network = build_network()
        resolver = PtrResolver(network, coverage=1.0, seed=1)
        addresses = ["10.0.1.1", "10.0.1.2", "2001:db80::1", "10.0.3.1", "2001:db80::3"]
        collection = ptr_dual_stack_sets(resolver, addresses)
        identifiers = {dual.identifier for dual in collection}
        assert "core1.isp.example.net" in identifiers
        assert "host3.isp.example.net" in identifiers

    def test_zero_coverage_finds_nothing(self):
        network = build_network()
        resolver = PtrResolver(network, coverage=0.0, seed=1)
        collection = ptr_dual_stack_sets(resolver, ["10.0.1.1", "2001:db80::1"])
        assert len(collection) == 0

    def test_unknown_address_resolves_to_none(self):
        resolver = PtrResolver(build_network(), coverage=1.0, seed=1)
        assert resolver.resolve("198.18.0.1") is None

    def test_resolution_is_deterministic(self):
        network = build_network()
        resolver_a = PtrResolver(network, coverage=0.5, seed=9)
        resolver_b = PtrResolver(network, coverage=0.5, seed=9)
        addresses = [f"10.0.{i}.{j}" for i in range(1, 4) for j in range(1, 3)]
        assert [resolver_a.resolve(a) for a in addresses] == [resolver_b.resolve(a) for a in addresses]

    def test_ipv4_only_device_not_a_dual_stack_set(self):
        network = build_network()
        resolver = PtrResolver(network, coverage=1.0, seed=1)
        collection = ptr_dual_stack_sets(resolver, ["10.0.2.1", "10.0.2.2"])
        assert len(collection) == 0
