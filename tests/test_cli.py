"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestScanAndResolve:
    def test_scan_writes_datasets(self, tmp_path):
        exit_code = main(
            ["scan", "--scale", "0.1", "--seed", "3", "--output", str(tmp_path), "--sources", "active", "censys"]
        )
        assert exit_code == 0
        assert (tmp_path / "active.jsonl").exists()
        assert (tmp_path / "censys.jsonl").exists()
        first_line = (tmp_path / "active.jsonl").read_text().splitlines()[0]
        record = json.loads(first_line)
        assert {"address", "protocol", "fields"} <= set(record)

    def test_scan_then_resolve_roundtrip(self, tmp_path, capsys):
        scan_dir = tmp_path / "scan"
        out_dir = tmp_path / "resolved"
        assert main(["scan", "--scale", "0.1", "--seed", "3", "--output", str(scan_dir)]) == 0
        assert (
            main(
                [
                    "resolve",
                    str(scan_dir / "active.jsonl"),
                    str(scan_dir / "censys.jsonl"),
                    "--output",
                    str(out_dir),
                    "--name",
                    "cli-test",
                ]
            )
            == 0
        )
        assert (out_dir / "ipv4_alias_sets.json").exists()
        assert (out_dir / "ipv6_alias_sets.json").exists()
        report = (out_dir / "report.md").read_text()
        assert report.startswith("# Alias resolution report")
        captured = capsys.readouterr().out
        assert "dual-stack sets:" in captured

    def test_scan_active_only(self, tmp_path):
        assert main(["scan", "--scale", "0.1", "--output", str(tmp_path), "--sources", "active"]) == 0
        assert (tmp_path / "active.jsonl").exists()
        assert not (tmp_path / "censys.jsonl").exists()

    def test_scan_registry_source(self, tmp_path):
        # Any registered source name works, not just the two historical ones.
        assert main(["scan", "--scale", "0.1", "--output", str(tmp_path), "--sources", "union-ipv4"]) == 0
        assert (tmp_path / "union-ipv4.jsonl").exists()

    def test_resolve_with_workers_matches_serial(self, tmp_path, capsys):
        scan_dir = tmp_path / "scan"
        assert main(["scan", "--scale", "0.1", "--seed", "3", "--output", str(scan_dir)]) == 0
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        for out_dir, workers in ((serial_dir, "1"), (parallel_dir, "2")):
            assert (
                main(
                    [
                        "resolve",
                        str(scan_dir / "active.jsonl"),
                        "--output",
                        str(out_dir),
                        "--workers",
                        workers,
                    ]
                )
                == 0
            )
        assert (serial_dir / "ipv4_alias_sets.json").read_text() == (
            parallel_dir / "ipv4_alias_sets.json"
        ).read_text()


class TestCliErrorPaths:
    def test_scan_unknown_source(self, tmp_path, capsys):
        exit_code = main(["scan", "--scale", "0.1", "--output", str(tmp_path), "--sources", "nonsense"])
        assert exit_code == 2
        captured = capsys.readouterr()
        assert "unknown source 'nonsense'" in captured.err
        assert not (tmp_path / "nonsense.jsonl").exists()

    def test_scan_empty_sources(self, tmp_path, capsys):
        exit_code = main(["scan", "--scale", "0.1", "--output", str(tmp_path), "--sources"])
        assert exit_code == 2
        assert "no sources requested" in capsys.readouterr().err

    def test_scan_without_output(self, capsys):
        exit_code = main(["scan", "--scale", "0.1"])
        assert exit_code == 2
        assert "--output" in capsys.readouterr().err

    def test_experiments_unknown_name_message(self, capsys):
        exit_code = main(["experiments", "--scale", "0.1", "--only", "table99"])
        assert exit_code == 2
        assert "unknown experiment 'table99'" in capsys.readouterr().err

    def test_resolve_rejects_invalid_workers(self, tmp_path, capsys):
        exit_code = main(
            ["resolve", str(tmp_path / "missing.jsonl"), "--output", str(tmp_path), "--workers", "0"]
        )
        assert exit_code == 2
        assert "--workers" in capsys.readouterr().err


class TestRegistryListings:
    def test_scan_list_sources(self, capsys):
        exit_code = main(["scan", "--list-sources"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in ("active", "censys", "union"):
            assert name in output
        assert "IPv6 hitlist" in output  # descriptions, not just names

    def test_experiments_list(self, capsys):
        exit_code = main(["experiments", "--list"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in ("table1", "table6", "figure3", "figure6"):
            assert name in output
        assert "ECDF" in output  # descriptions, not just names


class TestPlan:
    def test_plan_prints_coverage(self, capsys, tmp_path):
        exit_code = main(
            ["plan", "--scale", "0.05", "--seed", "3", "--vantages", "2", "--output", str(tmp_path)]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "vantage-1" in output
        assert "vantage-2" in output
        assert "merged" in output
        assert (tmp_path / "coverage.md").read_text().startswith("# Scan plan coverage")

    def test_plan_rejects_zero_vantages(self, capsys):
        assert main(["plan", "--scale", "0.05", "--vantages", "0"]) == 2
        assert "at least one vantage" in capsys.readouterr().err


class TestExperimentsAndClaims:
    def test_experiments_subset(self, capsys):
        exit_code = main(["experiments", "--scale", "0.1", "--seed", "5", "--only", "table4", "figure5"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "=== table4" in output
        assert "=== figure5" in output
        assert "=== table1" not in output

    def test_experiments_unknown_name(self, capsys):
        exit_code = main(["experiments", "--scale", "0.1", "--only", "table99"])
        assert exit_code == 2

    def test_claims_runs_and_reports(self, capsys):
        exit_code = main(["claims", "--scale", "0.1", "--seed", "5"])
        output = capsys.readouterr().out
        assert "C1:" in output and "C9:" in output
        assert exit_code in (0, 1)


class TestLongitudinal:
    def test_longitudinal_prints_stability_tables(self, capsys, tmp_path):
        exit_code = main(
            [
                "longitudinal",
                "--scale", "0.05",
                "--seed", "3",
                "--snapshots", "2",
                "--churn", "0.05",
                "--output", str(tmp_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Longitudinal stability (IPv4 union" in output
        assert "Longitudinal stability (IPv6 union" in output
        assert "incrementally re-resolved 1 deltas" in output
        markdown = (tmp_path / "stability.md").read_text()
        assert markdown.startswith("# Longitudinal stability report")

    def test_longitudinal_ipv4_only(self, capsys):
        exit_code = main(
            ["longitudinal", "--scale", "0.05", "--snapshots", "2", "--ipv4-only"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "IPv6 union" not in output


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_scan_defaults_to_full_scale(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["scan", "--output", "out"])
        assert args.scale == 1.0
