"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import main


class TestScanAndResolve:
    def test_scan_writes_datasets(self, tmp_path):
        exit_code = main(
            ["scan", "--scale", "0.1", "--seed", "3", "--output", str(tmp_path), "--sources", "active", "censys"]
        )
        assert exit_code == 0
        assert (tmp_path / "active.jsonl").exists()
        assert (tmp_path / "censys.jsonl").exists()
        header_line, first_line = (tmp_path / "active.jsonl").read_text().splitlines()[:2]
        assert json.loads(header_line)["name"] == "active"
        record = json.loads(first_line)
        assert {"address", "protocol", "fields"} <= set(record)

    def test_scan_then_resolve_roundtrip(self, tmp_path, capsys):
        scan_dir = tmp_path / "scan"
        out_dir = tmp_path / "resolved"
        assert main(["scan", "--scale", "0.1", "--seed", "3", "--output", str(scan_dir)]) == 0
        assert (
            main(
                [
                    "resolve",
                    str(scan_dir / "active.jsonl"),
                    str(scan_dir / "censys.jsonl"),
                    "--output",
                    str(out_dir),
                    "--name",
                    "cli-test",
                ]
            )
            == 0
        )
        assert (out_dir / "ipv4_alias_sets.json").exists()
        assert (out_dir / "ipv6_alias_sets.json").exists()
        report = (out_dir / "report.md").read_text()
        assert report.startswith("# Alias resolution report")
        captured = capsys.readouterr().out
        assert "dual-stack sets:" in captured

    def test_scan_active_only(self, tmp_path):
        assert main(["scan", "--scale", "0.1", "--output", str(tmp_path), "--sources", "active"]) == 0
        assert (tmp_path / "active.jsonl").exists()
        assert not (tmp_path / "censys.jsonl").exists()

    def test_scan_registry_source(self, tmp_path):
        # Any registered source name works, not just the two historical ones.
        assert main(["scan", "--scale", "0.1", "--output", str(tmp_path), "--sources", "union-ipv4"]) == 0
        assert (tmp_path / "union-ipv4.jsonl").exists()

    def test_resolve_with_workers_matches_serial(self, tmp_path, capsys):
        scan_dir = tmp_path / "scan"
        assert main(["scan", "--scale", "0.1", "--seed", "3", "--output", str(scan_dir)]) == 0
        serial_dir, parallel_dir = tmp_path / "serial", tmp_path / "parallel"
        for out_dir, workers in ((serial_dir, "1"), (parallel_dir, "2")):
            assert (
                main(
                    [
                        "resolve",
                        str(scan_dir / "active.jsonl"),
                        "--output",
                        str(out_dir),
                        "--workers",
                        workers,
                    ]
                )
                == 0
            )
        assert (serial_dir / "ipv4_alias_sets.json").read_text() == (
            parallel_dir / "ipv4_alias_sets.json"
        ).read_text()

    def test_resolve_stats_reports_build(self, tmp_path, capsys):
        scan_dir = tmp_path / "scan"
        assert main(["scan", "--scale", "0.1", "--seed", "3", "--output", str(scan_dir)]) == 0
        assert (
            main(
                [
                    "resolve",
                    str(scan_dir / "active.jsonl"),
                    "--output",
                    str(tmp_path / "out"),
                    "--stats",
                    "--workers",
                    "2",
                ]
            )
            == 0
        )
        output = capsys.readouterr().out
        assert "index build statistics:" in output
        assert "interned addresses:" in output
        assert "interned identifiers:" in output
        assert "build path:" in output
        assert "shared-memory" in output


class TestCliErrorPaths:
    def test_scan_unknown_source(self, tmp_path, capsys):
        exit_code = main(["scan", "--scale", "0.1", "--output", str(tmp_path), "--sources", "nonsense"])
        assert exit_code == 2
        captured = capsys.readouterr()
        assert "unknown source 'nonsense'" in captured.err
        assert not (tmp_path / "nonsense.jsonl").exists()

    def test_scan_empty_sources(self, tmp_path, capsys):
        exit_code = main(["scan", "--scale", "0.1", "--output", str(tmp_path), "--sources"])
        assert exit_code == 2
        assert "no sources requested" in capsys.readouterr().err

    def test_scan_without_output(self, capsys):
        exit_code = main(["scan", "--scale", "0.1"])
        assert exit_code == 2
        assert "--output" in capsys.readouterr().err

    def test_experiments_unknown_name_message(self, capsys):
        exit_code = main(["experiments", "--scale", "0.1", "--only", "table99"])
        assert exit_code == 2
        assert "unknown experiment 'table99'" in capsys.readouterr().err

    def test_resolve_missing_dataset_exits_cleanly(self, tmp_path, capsys):
        exit_code = main(
            ["resolve", str(tmp_path / "absent.jsonl"), "--output", str(tmp_path / "o")]
        )
        assert exit_code == 2
        assert "does not exist" in capsys.readouterr().err

    def test_longitudinal_rejects_zero_snapshots(self, capsys):
        exit_code = main(["longitudinal", "--scale", "0.05", "--snapshots", "0"])
        assert exit_code == 2
        assert "at least one snapshot" in capsys.readouterr().err

    def test_resolve_rejects_invalid_workers(self, tmp_path, capsys):
        exit_code = main(
            ["resolve", str(tmp_path / "missing.jsonl"), "--output", str(tmp_path), "--workers", "0"]
        )
        assert exit_code == 2
        assert "--workers" in capsys.readouterr().err


class TestRegistryListings:
    def test_scan_list_sources(self, capsys):
        exit_code = main(["scan", "--list-sources"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in ("active", "censys", "union"):
            assert name in output
        assert "IPv6 hitlist" in output  # descriptions, not just names

    def test_experiments_list(self, capsys):
        exit_code = main(["experiments", "--list"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in ("table1", "table6", "figure3", "figure6"):
            assert name in output
        assert "ECDF" in output  # descriptions, not just names


class TestPlan:
    def test_plan_prints_coverage(self, capsys, tmp_path):
        exit_code = main(
            ["plan", "--scale", "0.05", "--seed", "3", "--vantages", "2", "--output", str(tmp_path)]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "vantage-1" in output
        assert "vantage-2" in output
        assert "merged" in output
        assert (tmp_path / "coverage.md").read_text().startswith("# Scan plan coverage")

    def test_plan_rejects_zero_vantages(self, capsys):
        assert main(["plan", "--scale", "0.05", "--vantages", "0"]) == 2
        assert "at least one vantage" in capsys.readouterr().err


class TestExperimentsAndClaims:
    def test_experiments_subset(self, capsys):
        exit_code = main(["experiments", "--scale", "0.1", "--seed", "5", "--only", "table4", "figure5"])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "=== table4" in output
        assert "=== figure5" in output
        assert "=== table1" not in output

    def test_experiments_unknown_name(self, capsys):
        exit_code = main(["experiments", "--scale", "0.1", "--only", "table99"])
        assert exit_code == 2

    def test_claims_runs_and_reports(self, capsys):
        exit_code = main(["claims", "--scale", "0.1", "--seed", "5"])
        output = capsys.readouterr().out
        assert "C1:" in output and "C9:" in output
        assert exit_code in (0, 1)


class TestLongitudinal:
    def test_longitudinal_prints_stability_tables(self, capsys, tmp_path):
        exit_code = main(
            [
                "longitudinal",
                "--scale", "0.05",
                "--seed", "3",
                "--snapshots", "2",
                "--churn", "0.05",
                "--output", str(tmp_path),
            ]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Longitudinal stability (IPv4 union" in output
        assert "Longitudinal stability (IPv6 union" in output
        assert "incrementally re-resolved 1 deltas" in output
        markdown = (tmp_path / "stability.md").read_text()
        assert markdown.startswith("# Longitudinal stability report")

    def test_longitudinal_ipv4_only(self, capsys):
        exit_code = main(
            ["longitudinal", "--scale", "0.05", "--snapshots", "2", "--ipv4-only"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "IPv6 union" not in output

    def test_longitudinal_checkpoint_then_resume(self, capsys, tmp_path):
        checkpoint = tmp_path / "checkpoint"
        base = ["longitudinal", "--scale", "0.05", "--seed", "3", "--churn", "0.05"]
        assert main(base + ["--snapshots", "2", "--checkpoint", str(checkpoint)]) == 0
        assert (checkpoint / "checkpoint.json").exists()
        capsys.readouterr()

        # Resume to 3 snapshots; the combined table covers all of them.
        exit_code = main(
            ["longitudinal", "--resume", str(checkpoint), "--snapshots", "3",
             "--output", str(tmp_path / "out")]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "resuming after snapshot 1 (2/3 snapshots completed)" in output
        assert "resumed 1 snapshots" in output
        assert "Longitudinal stability (IPv4 union, 3 snapshots" in output
        markdown = (tmp_path / "out" / "stability.md").read_text()
        assert markdown.startswith("# Longitudinal stability report")
        # The checkpoint advanced in place.
        assert json.loads((checkpoint / "checkpoint.json").read_text())["completed"] == 3

    def test_longitudinal_keep_retains_newest_checkpoints(self, capsys, tmp_path):
        checkpoint = tmp_path / "checkpoint"
        exit_code = main(
            ["longitudinal", "--scale", "0.05", "--seed", "3", "--snapshots", "3",
             "--ipv4-only", "--checkpoint", str(checkpoint), "--keep", "2"]
        )
        assert exit_code == 0
        assert sorted(p.name for p in checkpoint.glob("index-*.json")) == [
            "index-0002.json",
            "index-0003.json",
        ]
        # A pruned directory still resumes from the newest checkpoint.
        capsys.readouterr()
        assert main(["longitudinal", "--resume", str(checkpoint), "--snapshots", "4"]) == 0
        assert "resuming after snapshot 2" in capsys.readouterr().out

    def test_longitudinal_rejects_zero_keep(self, capsys):
        exit_code = main(["longitudinal", "--scale", "0.05", "--keep", "0"])
        assert exit_code == 2
        assert "--keep" in capsys.readouterr().err

    def test_longitudinal_resume_missing_checkpoint(self, capsys, tmp_path):
        exit_code = main(["longitudinal", "--resume", str(tmp_path / "absent")])
        assert exit_code == 2
        assert "not a campaign checkpoint" in capsys.readouterr().err

    def test_longitudinal_resume_corrupt_snapshot_exits_cleanly(self, capsys, tmp_path):
        checkpoint = tmp_path / "checkpoint"
        assert main(
            ["longitudinal", "--scale", "0.05", "--snapshots", "2", "--ipv4-only",
             "--checkpoint", str(checkpoint)]
        ) == 0
        capsys.readouterr()
        manifest = json.loads((checkpoint / "checkpoint.json").read_text())
        snapshot = checkpoint / manifest["last_snapshot_file"]
        snapshot.write_text(snapshot.read_text()[:-40])  # bit-rot / torn copy
        exit_code = main(["longitudinal", "--resume", str(checkpoint)])
        assert exit_code == 2
        assert capsys.readouterr().err.strip()

    def test_longitudinal_resume_cannot_shrink(self, capsys, tmp_path):
        checkpoint = tmp_path / "checkpoint"
        assert main(
            ["longitudinal", "--scale", "0.05", "--snapshots", "2", "--ipv4-only",
             "--checkpoint", str(checkpoint)]
        ) == 0
        capsys.readouterr()
        exit_code = main(
            ["longitudinal", "--resume", str(checkpoint), "--snapshots", "1"]
        )
        assert exit_code == 2
        assert "already completed" in capsys.readouterr().err


class TestValidate:
    def test_list_validators(self, capsys):
        exit_code = main(["validate", "--list-validators"])
        assert exit_code == 0
        output = capsys.readouterr().out
        for name in ("midar", "ally", "speedtrap", "iffinder", "ptr"):
            assert name in output
        assert "Table 2" in output  # descriptions, not just names

    def test_unknown_validator_exits_2(self, capsys):
        exit_code = main(["validate", "--scale", "0.05", "--validators", "nonsense"])
        assert exit_code == 2
        assert "unknown validator 'nonsense'" in capsys.readouterr().err

    def test_empty_validators_exits_2(self, capsys):
        exit_code = main(["validate", "--scale", "0.05", "--validators"])
        assert exit_code == 2
        assert "no validators requested" in capsys.readouterr().err

    def test_validate_prints_summary_and_writes_markdown(self, capsys, tmp_path):
        exit_code = main(
            ["validate", "--scale", "0.05", "--seed", "3",
             "--validators", "midar", "ally", "--output", str(tmp_path)]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Validation summary" in output
        assert "midar" in output and "ally" in output
        assert "shared sample bank" in output
        markdown = (tmp_path / "validation.md").read_text()
        assert markdown.startswith("# Validation report")

    def test_validate_snapshots_mode(self, capsys, tmp_path):
        exit_code = main(
            ["validate", "--scale", "0.05", "--seed", "3", "--snapshots", "2",
             "--ipv4-only", "--output", str(tmp_path)]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "Per-snapshot validation (midar" in output
        markdown = (tmp_path / "validation.md").read_text()
        assert "Per-snapshot validation: midar" in markdown

    def test_validate_snapshots_rejects_zero(self, capsys):
        exit_code = main(["validate", "--scale", "0.05", "--snapshots", "0"])
        assert exit_code == 2
        assert "at least one snapshot" in capsys.readouterr().err


class TestSession:
    def test_session_save_then_load(self, capsys, tmp_path):
        directory = tmp_path / "session"
        exit_code = main(
            ["session", "save", str(directory), "--scale", "0.05", "--seed", "3",
             "--reports", "active"]
        )
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "resolved active" in output
        assert "saved session" in output
        assert (directory / "session.json").exists()

        exit_code = main(["session", "load", str(directory)])
        assert exit_code == 0
        output = capsys.readouterr().out
        assert "loaded session" in output
        assert "report active" in output

    def test_session_load_renders_experiments(self, capsys, tmp_path):
        directory = tmp_path / "session"
        assert main(
            ["session", "save", str(directory), "--scale", "0.05", "--seed", "3",
             "--reports", "active", "censys", "union"]
        ) == 0
        capsys.readouterr()
        exit_code = main(
            ["session", "load", str(directory), "--experiments", "table3"]
        )
        assert exit_code == 0
        assert "=== table3" in capsys.readouterr().out

    def test_session_save_unknown_report(self, capsys, tmp_path):
        exit_code = main(
            ["session", "save", str(tmp_path / "s"), "--scale", "0.05",
             "--reports", "nonsense"]
        )
        assert exit_code == 2
        assert "nonsense" in capsys.readouterr().err

    def test_session_load_missing_directory(self, capsys, tmp_path):
        exit_code = main(["session", "load", str(tmp_path / "absent")])
        assert exit_code == 2
        assert "not a saved session" in capsys.readouterr().err

    def test_session_load_unknown_experiment(self, capsys, tmp_path):
        directory = tmp_path / "session"
        assert main(
            ["session", "save", str(directory), "--scale", "0.05", "--reports"]
        ) == 0
        capsys.readouterr()
        exit_code = main(
            ["session", "load", str(directory), "--experiments", "nonsense"]
        )
        assert exit_code == 2
        assert "nonsense" in capsys.readouterr().err


class TestParser:
    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_scan_defaults_to_full_scale(self):
        from repro.cli import build_parser

        args = build_parser().parse_args(["scan", "--output", "out"])
        assert args.scale == 1.0


class TestCampaignFlagValidation:
    """The shared --interval-days/--churn bounds reject as usage errors."""

    @pytest.mark.parametrize("command", ["longitudinal", "validate", "serve"])
    def test_non_positive_interval_days_rejected(self, capsys, command):
        exit_code = main([command, "--scale", "0.05", "--interval-days", "0"])
        assert exit_code == 2
        assert "--interval-days must be positive" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["longitudinal", "validate", "serve"])
    def test_negative_interval_days_rejected(self, capsys, command):
        exit_code = main([command, "--scale", "0.05", "--interval-days", "-3"])
        assert exit_code == 2
        assert "--interval-days must be positive" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["longitudinal", "validate", "serve"])
    def test_out_of_range_churn_rejected(self, capsys, command):
        exit_code = main([command, "--scale", "0.05", "--churn", "1.5"])
        assert exit_code == 2
        assert "--churn must be in [0, 1)" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["longitudinal", "validate", "serve"])
    def test_negative_churn_rejected(self, capsys, command):
        exit_code = main([command, "--scale", "0.05", "--churn", "-0.1"])
        assert exit_code == 2
        assert "--churn must be in [0, 1)" in capsys.readouterr().err

    def test_shared_flag_defined_once(self):
        # The duplicated definitions collapsed into one helper: every
        # campaign-shaped parser carries the same default.
        from repro.cli import build_parser

        parser = build_parser()
        for command in ("longitudinal", "validate", "serve"):
            args = parser.parse_args([command])
            assert args.interval_days == 7.0


class TestServe:
    def test_serve_smoke(self, capsys):
        exit_code = main(
            ["serve", "--scale", "0.05", "--seed", "3", "--max-batches", "2",
             "--ipv4-only"]
        )
        assert exit_code == 0
        captured = capsys.readouterr().out
        assert "emit 0 (snapshot-0):" in captured
        assert "emit 1 (snapshot-1):" in captured
        assert "served 2 polls, 2 reports" in captured
        assert "estimated churn rate:" in captured

    def test_serve_rejects_zero_max_batches(self, capsys):
        exit_code = main(["serve", "--scale", "0.05", "--max-batches", "0"])
        assert exit_code == 2
        assert "--max-batches" in capsys.readouterr().err

    def test_serve_rejects_negative_poll_interval(self, capsys):
        exit_code = main(["serve", "--scale", "0.05", "--poll-interval", "-1"])
        assert exit_code == 2
        assert "--poll-interval" in capsys.readouterr().err

    def test_serve_rejects_zero_emit_every_changes(self, capsys):
        exit_code = main(["serve", "--scale", "0.05", "--emit-every-changes", "0"])
        assert exit_code == 2
        assert "--emit-every-changes" in capsys.readouterr().err

    def test_serve_checkpoint_then_resume(self, capsys, tmp_path):
        checkpoint = tmp_path / "stream"
        base = ["serve", "--scale", "0.05", "--seed", "3", "--churn", "0.05",
                "--ipv4-only"]
        assert main(base + ["--max-batches", "2", "--checkpoint", str(checkpoint)]) == 0
        capsys.readouterr()
        assert main(
            ["serve", "--resume", str(checkpoint), "--max-batches", "2"]
        ) == 0
        captured = capsys.readouterr().out
        assert "resuming after poll 1" in captured
        assert "emit 2 (snapshot-2):" in captured
        assert "checkpointed 4 polls" in captured

    def test_serve_resume_missing_checkpoint(self, capsys, tmp_path):
        exit_code = main(["serve", "--resume", str(tmp_path / "absent")])
        assert exit_code == 2
        assert "not a stream checkpoint" in capsys.readouterr().err

    def test_serve_metrics_capture_stream_series(self, capsys, tmp_path):
        metrics = tmp_path / "serve.json"
        assert main(
            ["serve", "--scale", "0.05", "--max-batches", "2", "--ipv4-only",
             "--metrics", str(metrics)]
        ) == 0
        payload = json.loads(metrics.read_text())
        assert "stream.events" in payload.get("series", {})
        counters = payload.get("counters", {})
        assert any(name.startswith("stream.events") for name in counters)
