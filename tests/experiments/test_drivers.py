"""Tests for the per-table / per-figure experiment drivers."""

from repro.experiments import (
    figure3,
    figure4,
    figure5,
    figure6,
    table1,
    table2,
    table3,
    table4,
    table5,
    table6,
)
from repro.simnet.asn import AsRole


class TestTable1:
    def test_rows_and_render(self, scenario):
        result = table1.build(scenario)
        assert len(result.rows) == 6
        ssh = result.row("SSH")
        assert ssh.active_ips > 0
        assert ssh.union_ips >= max(ssh.active_ips, ssh.censys_ips)
        snmp = result.row("SNMPv3")
        assert snmp.censys_ips is None
        text = table1.render(result)
        assert "Table 1" in text and "SSH" in text and "n.a." in text

    def test_ipv6_rows_are_active_only(self, scenario):
        result = table1.build(scenario)
        row = result.row("SSH (IPv6)", family="ipv6")
        assert row.censys_ips is None
        assert row.active_ips > 0


class TestTable2:
    def test_validation_rows(self, scenario):
        result = table2.build(scenario, midar_sample_size=25)
        pairs = {row.pair for row in result.rows}
        assert pairs == {"SSH-BGP", "SSH-SNMPv3", "BGP-SNMPv3", "SSH-MIDAR"}
        for row in result.rows:
            assert row.agree + row.disagree == row.sample_size
        ssh_snmp = result.row("SSH-SNMPv3")
        assert ssh_snmp.agreement_rate > 0.8
        assert 0.0 <= result.midar_coverage <= 1.0
        assert "MIDAR coverage" in table2.render(result)


class TestTable3:
    def test_union_dominates_and_shares_sum(self, scenario):
        result = table3.build(scenario)
        union_row = result.row("ipv4", "Union", "union")
        snmp_row = result.row("ipv4", "SNMPv3", "union")
        ssh_row = result.row("ipv4", "SSH", "union")
        assert union_row.sets >= max(snmp_row.sets, ssh_row.sets)
        assert union_row.covered_addresses >= ssh_row.covered_addresses
        assert 0.0 <= result.union_only_snmp_share <= 1.0
        assert result.union_ssh_bgp_share > result.union_only_snmp_share
        assert "Table 3" in table3.render(result)

    def test_censys_has_no_snmp_row(self, scenario):
        result = table3.build(scenario)
        assert all(
            not (row.protocol == "SNMPv3" and row.source == "censys") for row in result.rows
        )


class TestTable4:
    def test_dual_stack_rows(self, scenario):
        result = table4.build(scenario)
        union = result.row("Union")
        ssh = result.row("SSH")
        snmp = result.row("SNMPv3")
        assert union.sets >= ssh.sets
        assert ssh.sets > snmp.sets
        assert union.ipv4_addresses > 0 and union.ipv6_addresses > 0
        assert 0.0 <= result.one_to_one_share <= 1.0
        assert "Dual-Stack" in table4.render(result)


class TestTable5And6:
    def test_table5_role_composition(self, scenario):
        result = table5.build(scenario)
        assert set(result.columns) == {"SSH", "BGP", "SNMPv3", "Union"}
        assert result.cloud_share("SSH") > 0.5
        bgp_roles = result.role_counts("BGP")
        assert bgp_roles.get(AsRole.ISP, 0) >= bgp_roles.get(AsRole.CLOUD, 0)
        assert "Table 5" in table5.render(result)

    def test_table6_entries(self, scenario):
        result = table6.build(scenario)
        assert result.dual_stack_entries
        assert result.ipv6_entries
        assert 0.0 < result.top3_dual_stack_share <= 1.0
        assert "Table 6" in table6.render(result)


class TestFigures:
    def test_figure3_curves(self, scenario):
        result = figure3.build(scenario)
        assert set(result.curves) == {"Censys BGP", "Active BGP", "Censys SSH", "Active SSH", "Active SNMPv3"}
        ssh = result.curve("Active SSH")
        bgp = result.curve("Active BGP")
        assert ssh.fraction_exactly_two() > bgp.fraction_exactly_two()
        assert "Figure 3" in figure3.render(result)

    def test_figure4_curves(self, scenario):
        result = figure4.build(scenario)
        assert set(result.curves) == {"Active SSH", "Active BGP", "Active SNMPv3"}
        assert "Figure 4" in figure4.render(result)

    def test_figure5_multi_as(self, scenario):
        result = figure5.build(scenario)
        assert result.multi_as_fractions["BGP"] > result.multi_as_fractions["SSH"]
        assert result.multi_as_fractions["SSH"] < 0.15
        assert "Figure 5" in figure5.render(result)

    def test_figure6_distributions(self, scenario):
        result = figure6.build(scenario)
        assert result.ases_with_alias_sets > 0
        assert result.ases_with_dual_stack_sets > 0
        assert result.ases_with_dual_stack_sets <= result.ases_with_alias_sets
        assert "Figure 6" in figure6.render(result)
