"""Shared fixtures for the experiment-driver tests.

The drivers are exercised on a reduced-scale scenario so the whole module
runs in a few seconds; the full-scale scenario is exercised by the benchmark
harness.
"""

import pytest

from repro.experiments.scenario import PaperScenario, ScenarioConfig


@pytest.fixture(scope="package")
def scenario():
    return PaperScenario(ScenarioConfig(scale=0.25, seed=11))
