"""Tests for the experiment runner and the EXPERIMENTS.md generator."""

from repro.experiments.runner import experiments_markdown, headline_claims, run_all


class TestRunner:
    def test_run_all_produces_every_experiment(self, scenario):
        rendered = run_all(scenario)
        assert set(rendered) == {
            "table1",
            "table2",
            "table3",
            "table4",
            "table5",
            "table6",
            "figure3",
            "figure4",
            "figure5",
            "figure6",
        }
        assert all(isinstance(text, str) and text for text in rendered.values())

    def test_headline_claims_structure(self, scenario):
        claims = headline_claims(scenario)
        identifiers = [claim.identifier for claim in claims]
        assert identifiers == ["C1", "C2", "C3", "C3b", "C4", "C5", "C6", "C7", "C8", "C9"]
        # Several claims (coverage gaps, rate-limiting effects) only emerge at
        # full scale; at this reduced scale a majority should already hold.
        holding = sum(1 for claim in claims if claim.holds)
        assert holding >= 6

    def test_markdown_contains_claims_and_tables(self, scenario):
        text = experiments_markdown(scenario)
        assert text.startswith("# EXPERIMENTS")
        assert "| C1" in text
        assert "### table5" in text
        assert "### figure6" in text
