"""Tests for the shared evaluation scenario."""

import pytest

from repro.experiments.scenario import paper_scenario
from repro.net.addresses import AddressFamily
from repro.simnet.device import ServiceType


class TestScenario:
    def test_lazy_properties_are_cached(self, scenario):
        assert scenario.network is scenario.network
        assert scenario.active_ipv4 is scenario.active_ipv4
        assert scenario.report("active") is scenario.report("active")

    def test_derived_datasets_are_cached(self, scenario):
        # union_ipv4 used to re-run merge_datasets on every access.
        assert scenario.union_ipv4 is scenario.union_ipv4
        assert scenario.censys_ipv4_standard is scenario.censys_ipv4_standard

    def test_sources_have_expected_protocols(self, scenario):
        assert scenario.active_ipv4.protocols() == {ServiceType.SSH, ServiceType.BGP, ServiceType.SNMPV3}
        assert ServiceType.SNMPV3 not in scenario.censys_ipv4.protocols()

    def test_active_ipv6_limited_to_hitlist(self, scenario):
        hitlist = set(scenario.hitlist)
        assert scenario.active_ipv6.addresses() <= hitlist

    def test_union_dataset_is_default_port_only(self, scenario):
        assert all(observation.is_standard_port() for observation in scenario.union_ipv4)

    def test_unknown_report_source_rejected(self, scenario):
        with pytest.raises(ValueError):
            scenario.report("mystery")

    def test_dataset_for_dispatch(self, scenario):
        assert scenario.dataset_for("active", AddressFamily.IPV4) is scenario.active_ipv4
        assert scenario.dataset_for("union", AddressFamily.IPV6) is scenario.active_ipv6

    def test_paper_scenario_cache(self):
        assert paper_scenario(scale=0.1, seed=3) is paper_scenario(scale=0.1, seed=3)

    def test_censys_snapshot_earlier_than_active(self, scenario):
        censys_times = [observation.timestamp for observation in scenario.censys_ipv4]
        active_times = [observation.timestamp for observation in scenario.active_ipv4]
        assert max(censys_times) < min(active_times)
