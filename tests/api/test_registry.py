"""Tests for the generic registry primitive."""

import pytest

from repro.api.registry import Registry
from repro.errors import RegistryError, ReproError


class TestRegistry:
    def test_add_and_get_roundtrip(self):
        registry = Registry("widget")
        registry.add("one", 1, description="the first")
        assert registry.get("one") == 1
        assert registry.entry("one").description == "the first"

    def test_names_preserve_registration_order(self):
        registry = Registry("widget")
        for name in ("zulu", "alpha", "mike"):
            registry.add(name, name.upper())
        assert registry.names() == ["zulu", "alpha", "mike"]
        assert [entry.name for entry in registry] == ["zulu", "alpha", "mike"]

    def test_unknown_name_lists_known_names(self):
        registry = Registry("widget")
        registry.add("known", 1)
        with pytest.raises(RegistryError, match="unknown widget 'missing'.*known"):
            registry.get("missing")

    def test_unknown_name_is_a_value_error(self):
        # Pre-registry callers caught ValueError for unknown sources; the
        # registry keeps that contract.
        registry = Registry("widget")
        with pytest.raises(ValueError):
            registry.get("missing")
        with pytest.raises(ReproError):
            registry.get("missing")

    def test_duplicate_registration_refused(self):
        registry = Registry("widget")
        registry.add("name", 1)
        with pytest.raises(RegistryError, match="already registered"):
            registry.add("name", 2)
        assert registry.get("name") == 1

    def test_replace_overrides(self):
        registry = Registry("widget")
        registry.add("name", 1)
        registry.add("name", 2, replace=True)
        assert registry.get("name") == 2

    def test_empty_name_refused(self):
        registry = Registry("widget")
        with pytest.raises(RegistryError):
            registry.add("", 1)

    def test_decorator_form(self):
        registry = Registry("handler")

        @registry.register("double", description="doubles its input")
        def double(value):
            return 2 * value

        assert registry.get("double") is double
        assert "double" in registry
        assert len(registry) == 1
