"""Tests for the sharded parallel index build."""

import pytest

from repro.api.parallel import (
    build_index_parallel,
    resolve_parallel,
    shard_observations,
    shard_of,
)
from repro.core.engine import ObservationIndex, report_signature
from repro.core.identifiers import IdentifierOptions
from repro.core.pipeline import run_alias_resolution
from repro.errors import DatasetError
from repro.simnet.device import ServiceType
from repro.sources.records import Observation


@pytest.fixture(scope="module")
def observations(session):
    return list(session.observations("union"))


class TestSharding:
    def test_sharding_partitions_every_observation(self, observations):
        shards = shard_observations(observations, 4)
        assert sum(len(shard) for shard in shards) == len(observations)

    def test_addresses_never_split_across_shards(self, observations):
        shards = shard_observations(observations, 4)
        seen: dict[str, int] = {}
        for number, shard in enumerate(shards):
            for observation in shard:
                assert seen.setdefault(observation.address, number) == number

    def test_shard_assignment_is_deterministic(self):
        assert shard_of("192.0.2.1", 7) == shard_of("192.0.2.1", 7)

    def test_invalid_shard_count_rejected(self, observations):
        with pytest.raises(ValueError):
            shard_observations(observations, 0)


class TestParallelBuild:
    def test_parallel_index_matches_serial(self, observations):
        serial = ObservationIndex.build(observations)
        for workers in (2, 3):
            parallel = build_index_parallel(observations, workers=workers)
            assert parallel.state_signature() == serial.state_signature()

    def test_parallel_report_matches_serial(self, observations):
        serial = run_alias_resolution(list(observations), name="union")
        parallel = resolve_parallel(observations, name="union", workers=2)
        assert report_signature(parallel) == report_signature(serial)

    def test_single_worker_falls_back_to_serial(self, observations):
        index = build_index_parallel(observations, workers=1)
        assert index.state_signature() == ObservationIndex.build(observations).state_signature()

    def test_invalid_worker_count_rejected(self, observations):
        with pytest.raises(ValueError):
            build_index_parallel(observations, workers=0)


def _observation(address: str, fingerprint: str = "f") -> Observation:
    return Observation(
        address=address,
        protocol=ServiceType.SSH,
        source="test",
        port=22,
        asn=64500,
        fields=(
            ("capability_signature", "caps"),
            ("host_key_fingerprint", fingerprint),
        ),
    )


class TestIndexMerge:
    def test_merge_adds_refcounts(self):
        left = ObservationIndex()
        right = ObservationIndex()
        left.add(_observation("192.0.2.1"))
        right.add(_observation("192.0.2.1"))
        right.add(_observation("192.0.2.2"))
        merged = left.merge(right)
        assert merged is left
        serial = ObservationIndex()
        for address in ("192.0.2.1", "192.0.2.1", "192.0.2.2"):
            serial.add(_observation(address))
        assert merged.state_signature() == serial.state_signature()

    def test_merge_into_itself_refused(self):
        index = ObservationIndex()
        index.add(_observation("192.0.2.1"))
        with pytest.raises(DatasetError):
            index.merge(index)

    def test_merge_requires_matching_options(self):
        left = ObservationIndex()
        right = ObservationIndex(IdentifierOptions(ssh_include_banner=False))
        with pytest.raises(ValueError, match="different identifier options"):
            left.merge(right)

    def test_merged_removal_still_exact(self):
        # A merged index keeps the refcount invariants: removing one of two
        # identical observations keeps the address, removing both drops it.
        left = ObservationIndex()
        right = ObservationIndex()
        left.add(_observation("192.0.2.1"))
        right.add(_observation("192.0.2.1"))
        left.merge(right)
        left.remove(_observation("192.0.2.1"))
        members = left.bucket_members(ServiceType.SSH, _observation("192.0.2.1").family)
        assert any("192.0.2.1" in addresses for addresses in members.values())
        left.remove(_observation("192.0.2.1"))
        members = left.bucket_members(ServiceType.SSH, _observation("192.0.2.1").family)
        assert all("192.0.2.1" not in addresses for addresses in members.values())
