"""Tests for the :class:`ReproSession` facade and scenario-shim parity."""

import pytest

from repro.api import ReproSession, ScanPlan, ScenarioConfig, repro_session
from repro.core.engine import report_signature
from repro.experiments.scenario import PaperScenario, paper_scenario


class TestSessionState:
    def test_network_and_hitlist_built_once(self, session):
        assert session.network is session.network
        assert session.hitlist is session.hitlist

    def test_reports_cached(self, session):
        assert session.report("active") is session.report("active")

    def test_report_cache_shared_between_name_and_spec(self, session):
        # The same composition must not re-resolve under a cosmetic name.
        from repro.api.sources import CENSYS_STANDARD

        assert session.report("censys") is session.report(CENSYS_STANDARD)

    def test_report_names_match_source_labels(self, session):
        for source in ("active", "censys", "union"):
            assert session.report(source).name == source

    def test_topology_config_carries_loss_rate(self):
        config = ScenarioConfig(scale=0.1, seed=7, loss_rate=0.2)
        topology = config.topology_config()
        assert topology.loss_rate == 0.2

    def test_topology_config_is_immutable(self):
        topology = ScenarioConfig(scale=0.1).topology_config()
        with pytest.raises(AttributeError):
            topology.loss_rate = 0.5

    def test_repro_session_cache(self):
        assert repro_session(scale=0.05, seed=3) is repro_session(scale=0.05, seed=3)


class TestScenarioShimParity:
    """The back-compat shim must be the session API, attribute-spelled."""

    @pytest.fixture(scope="class")
    def pair(self):
        config = ScenarioConfig(scale=0.1, seed=7)
        return ReproSession(config), PaperScenario(config)

    def test_datasets_identical(self, pair):
        session, scenario = pair
        assert list(session.dataset("active-ipv4")) == list(scenario.active_ipv4)
        assert list(session.dataset("censys")) == list(scenario.censys_ipv4)
        assert list(session.dataset("union-ipv4")) == list(scenario.union_ipv4)
        assert list(session.dataset("censys-standard")) == list(scenario.censys_ipv4_standard)

    def test_reports_identical(self, pair):
        session, scenario = pair
        for source in ("active", "censys", "union"):
            assert report_signature(session.report(source)) == report_signature(
                scenario.report(source)
            )

    def test_observation_streams_identical(self, pair):
        session, scenario = pair
        for source in ("active", "censys", "union"):
            assert list(session.observations(source)) == list(scenario.observations_for(source))

    def test_default_plan_reproduces_active_report(self, session):
        result = session.run_plan(ScanPlan.default())
        assert report_signature(result.report) == report_signature(session.report("active"))

    def test_experiments_run_on_plain_session(self, session):
        text = session.run_experiment("table3")
        assert text.startswith("Table 3")

    def test_paper_scenario_cache(self):
        assert paper_scenario(scale=0.05, seed=3) is paper_scenario(scale=0.05, seed=3)
