"""Tests for multi-vantage scan plans over one shared observation index."""

import pytest

from repro.api import ScanPlan
from repro.api.sources import ACTIVE_IPV4, ACTIVE_IPV6
from repro.core.engine import report_signature
from repro.core.pipeline import run_alias_resolution
from repro.sources.records import iter_observations


@pytest.fixture(scope="module")
def spread_result(session):
    return session.run_plan(ScanPlan.spread(2))


class TestPlanConstruction:
    def test_empty_plan_rejected(self):
        with pytest.raises(ValueError):
            ScanPlan(vantages=())

    def test_spread_vantages_are_distinct(self):
        plan = ScanPlan.spread(3)
        addresses = {vantage.address for vantage in plan.vantages}
        offsets = {vantage.seed_offset for vantage in plan.vantages}
        assert len(addresses) == 3
        assert len(offsets) == 3

    def test_default_plan_specs_share_the_active_cache(self):
        # Pruning default-valued parameters makes the default plan's specs
        # equal the bare active specs, so report("active") and the default
        # plan share one campaign per family.
        plan = ScanPlan.default()
        (vantage,) = plan.vantages
        assert vantage.ipv4_spec(plan) == ACTIVE_IPV4
        assert vantage.ipv6_spec(plan) == ACTIVE_IPV6

    def test_spread_specs_do_not_collide(self):
        plan = ScanPlan.spread(2)
        first, second = plan.vantages
        assert first.ipv4_spec(plan) != second.ipv4_spec(plan)


class TestPlanExecution:
    def test_merged_report_equals_single_stream(self, session, spread_result):
        plan = spread_result.plan
        datasets = [
            session.dataset(spec) for vantage in plan.vantages for spec in vantage.specs(plan)
        ]
        single = run_alias_resolution(iter_observations(*datasets), name=plan.name)
        assert report_signature(spread_result.report) == report_signature(single)

    def test_per_vantage_observations_sum_to_merged(self, spread_result):
        total = sum(coverage.observations for coverage in spread_result.vantage_coverage)
        assert total == spread_result.merged_coverage.observations
        assert spread_result.index.observed == total

    def test_merged_coverage_at_least_any_vantage(self, spread_result):
        merged = spread_result.merged_coverage
        for coverage in spread_result.vantage_coverage:
            assert merged.ipv4_addresses >= coverage.ipv4_addresses
            assert merged.ipv6_addresses >= coverage.ipv6_addresses

    def test_coverage_markdown_lists_vantages_and_merged(self, spread_result):
        text = spread_result.coverage_markdown()
        assert "vantage-1" in text
        assert "vantage-2" in text
        assert "| merged" in text
        assert "non-singleton IPv4 union sets" in text

    def test_ipv4_only_plan_sees_no_ipv6(self, session):
        result = session.run_plan(ScanPlan.spread(1, include_ipv6=False))
        assert result.merged_coverage.ipv6_addresses == 0
        vantage = result.plan.vantages[0]
        assert len(vantage.specs(result.plan)) == 1
