"""Shared fixtures for the session-API tests.

One reduced-scale session per package: the API tests exercise composition,
caching and parity — none of which depend on topology size — so they share
a single cheap build.
"""

import pytest

from repro.api import ReproSession, ScenarioConfig


@pytest.fixture(scope="package")
def session():
    return ReproSession(ScenarioConfig(scale=0.1, seed=7))
