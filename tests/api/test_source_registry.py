"""Tests for declarative sources, combinators, and the source registries."""

import pytest

from repro.api import ReproSession, ScenarioConfig, SourceSpec, concat, standard_ports, union_of
from repro.api.sources import ACTIVE_IPV4, SOURCES, register_source, source_kind
from repro.errors import RegistryError
from repro.simnet.device import ServiceType
from repro.sources.records import Observation, ObservationDataset


class TestSourceSpec:
    def test_create_sorts_params(self):
        spec = SourceSpec.create("active-ipv4", seed_offset=3, start_time=0.0)
        assert spec.params == (("seed_offset", 3), ("start_time", 0.0))
        assert spec.param("seed_offset") == 3
        assert spec.param("missing", "fallback") == "fallback"

    def test_specs_are_hashable_cache_keys(self):
        a = SourceSpec.create("active-ipv4", seed_offset=1)
        b = SourceSpec.create("active-ipv4", seed_offset=1)
        assert a == b and hash(a) == hash(b)
        assert {a: "cached"}[b] == "cached"

    def test_describe_renders_composition(self):
        spec = union_of(SourceSpec(kind="active-ipv4"), SourceSpec(kind="censys-ipv4"))
        assert "union" in spec.describe()
        assert "active-ipv4" in spec.describe()


class TestBuiltinSources:
    def test_registry_contains_paper_sources(self):
        names = SOURCES.names()
        for expected in ("active", "active-ipv4", "active-ipv6", "censys", "censys-standard", "union"):
            assert expected in names

    def test_datasets_cached_per_spec(self, session):
        assert session.dataset("active-ipv4") is session.dataset("active-ipv4")
        # The bare spec and the registered name resolve to the same cache slot.
        assert session.dataset(ACTIVE_IPV4) is session.dataset("active-ipv4")

    def test_active_composition_streams_both_families(self, session):
        active = session.dataset("active")
        families = {observation.family.value for observation in active}
        assert families == {"ipv4", "ipv6"}
        assert active.name == "active"

    def test_censys_raw_vs_standard(self, session):
        raw = session.dataset("censys")
        standard = session.dataset("censys-standard")
        assert any(not observation.is_standard_port() for observation in raw)
        assert all(observation.is_standard_port() for observation in standard)

    def test_union_merges_both_sources(self, session):
        union = session.dataset("union-ipv4")
        assert union.name == "union"
        sources = {observation.source for observation in union}
        assert sources == {"active", "censys"}

    def test_observations_uses_report_composition(self, session):
        # The "censys" *report* stream is default-port only even though the
        # "censys" dataset is raw — the split the paper's methodology makes.
        assert all(observation.is_standard_port() for observation in session.observations("censys"))

    def test_unknown_source_lists_alternatives(self, session):
        with pytest.raises(RegistryError, match="unknown source 'wat'"):
            session.dataset("wat")

    def test_dataset_independent_of_build_order(self):
        # Campaigns share the network's per-(vantage, AS, window) IDS
        # budgets; the active builders reset them so a cached dataset is a
        # pure function of (config, spec), not of what ran before it.
        spec = SourceSpec.create("active-ipv4", seed_offset=5)
        alone = ReproSession(ScenarioConfig(scale=0.05, seed=7)).dataset(spec)
        session = ReproSession(ScenarioConfig(scale=0.05, seed=7))
        session.dataset("active-ipv4")  # same vantage, same time window
        after_other_campaign = session.dataset(spec)
        assert list(alone) == list(after_other_campaign)


class TestUserRegisteredSources:
    def test_custom_kind_and_named_source(self):
        @source_kind("static-fixture", "a fixed in-memory observation list")
        def build_static(session, spec):
            observation = Observation(
                address="192.0.2.77",
                protocol=ServiceType.SSH,
                source="static",
                port=22,
                fields=(("host_key_fingerprint", "abc"),),
            )
            return ObservationDataset(str(spec.param("name", "static")), [observation])

        spec = SourceSpec.create("static-fixture", name="fixture")
        register_source("static-fixture-test", spec, "test fixture source")
        try:
            session = ReproSession(ScenarioConfig(scale=0.01, seed=1))
            dataset = session.dataset("static-fixture-test")
            assert dataset.name == "fixture"
            assert len(dataset) == 1
            # Registered sources compose like built-ins.
            doubled = session.dataset(concat(spec, spec, label="doubled"))
            assert len(doubled) == 2
        finally:
            # Keep the module-level registries clean for other tests.
            SOURCES._entries.pop("static-fixture-test")

    def test_standard_ports_combinator_over_custom_data(self):
        @source_kind("mixed-ports", "observations on mixed ports")
        def build_mixed(session, spec):
            def make(port):
                return Observation(
                    address="192.0.2.99",
                    protocol=ServiceType.SSH,
                    source="mixed",
                    port=port,
                )

            return ObservationDataset("mixed", [make(22), make(2222)])

        session = ReproSession(ScenarioConfig(scale=0.01, seed=1))
        filtered = session.dataset(standard_ports(SourceSpec(kind="mixed-ports")))
        assert [observation.port for observation in filtered] == [22]
