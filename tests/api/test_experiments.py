"""Tests for the experiment registry and the ``@experiment`` decorator."""

import pytest

from repro.api.experiments import (
    EXPERIMENTS,
    all_experiments,
    experiment,
    experiment_names,
    get_experiment,
    register_experiment,
)
from repro.errors import RegistryError
from repro.experiments import table3

EXPECTED = [
    "table1", "table2", "table3", "table4", "table5", "table6",
    "figure3", "figure4", "figure5", "figure6",
]


# Module-level render: the decorator resolves it from the build function's
# module, completing the uniform build/render protocol.
def render(result):
    return f"rendered {result}"


class TestBuiltinRegistrations:
    def test_all_ten_drivers_registered_in_order(self):
        names = experiment_names()
        assert [name for name in names if name in EXPECTED] == EXPECTED

    def test_descriptions_present(self):
        for registered in all_experiments():
            if registered.name in EXPECTED:
                assert registered.description

    def test_registered_run_equals_direct_build_render(self, session):
        registered = get_experiment("table3")
        assert registered.run(session) == table3.render(table3.build(session))

    def test_unknown_experiment_lists_known(self):
        with pytest.raises(RegistryError, match="unknown experiment 'table99'"):
            get_experiment("table99")


class TestCustomExperiments:
    def test_decorator_registers_with_module_render(self):
        @experiment("custom-decorated", description="a decorated experiment")
        def build(session):
            return "payload"

        try:
            registered = get_experiment("custom-decorated")
            assert registered.run(object()) == "rendered payload"
            assert registered.description == "a decorated experiment"
        finally:
            EXPERIMENTS._entries.pop("custom-decorated")

    def test_register_experiment_with_explicit_render(self):
        register_experiment(
            "custom-explicit",
            build=lambda session: 21,
            render=lambda result: str(2 * result),
            description="doubles",
        )
        try:
            assert get_experiment("custom-explicit").run(object()) == "42"
        finally:
            EXPERIMENTS._entries.pop("custom-explicit")

    def test_duplicate_name_refused(self):
        with pytest.raises(RegistryError, match="already registered"):
            register_experiment("table3", build=lambda s: None, render=str)
